"""Token-bucket admission control.

Section 8 recovers the large-scale Social Network deployment from a
cascading hotspot by rate limiting: "constrains the admitted user
traffic until current hotspots dissipate ... it affects user experience
by dropping a fraction of requests."
"""

from __future__ import annotations

from ..sim.engine import Environment

__all__ = ["TokenBucket"]


class TokenBucket:
    """A classic token bucket evaluated lazily on each admission check."""

    def __init__(self, env: Environment, rate_per_s: float,
                 burst: float = 10.0):
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be > 0")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.env = env
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._tokens = burst
        self._last = env.now
        self.admitted = 0
        self.dropped = 0
        self.enabled = True

    def _refill(self) -> None:
        now = self.env.now
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last) * self.rate_per_s)
        self._last = now

    def set_rate(self, rate_per_s: float) -> None:
        """Adjust the admitted rate (tightened during incident recovery)."""
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be > 0")
        self._refill()
        self.rate_per_s = rate_per_s

    def set_burst(self, burst: float) -> None:
        """Resize the bucket depth; stored tokens are clamped to fit."""
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self._refill()
        self.burst = burst
        self._tokens = min(self._tokens, burst)

    def allow(self) -> bool:
        """Admit or drop one request."""
        if not self.enabled:
            self.admitted += 1
            return True
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            self.admitted += 1
            return True
        self.dropped += 1
        return False

    @property
    def shed_count(self) -> int:
        """Requests turned away by the bucket (alias of ``dropped``,
        matching the vocabulary of the resilience layer's shedder)."""
        return self.dropped

    @property
    def drop_fraction(self) -> float:
        """Share of checked requests that were dropped."""
        total = self.admitted + self.dropped
        return self.dropped / total if total else 0.0
