"""Machines and service instances.

A :class:`Machine` models one physical server: a hardware platform, a
current (RAPL-cappable) frequency, a shared NIC in each direction, and a
possible "slow server" degradation factor (Fig. 22c).  A
:class:`ServiceInstance` is one container of a service pinned to a
machine with a core allocation; its CPU is a processor-sharing server
whose rate reflects platform strength, current frequency, the service's
frequency sensitivity, and any slow-server injection.

Work is calibrated in nominal-Xeon CPU seconds, so the instance rate is

    rate = 1 / (beta / speed + (1 - beta))
    speed = single_thread_factor * (freq / 2.5 GHz) * slow_factor

i.e. the compute-bound fraction ``beta`` of the work scales with
effective core speed, the I/O fraction does not (see
:mod:`repro.arch.frequency`).
"""

from __future__ import annotations

from typing import List, Optional

from ..arch.frequency import FrequencyModel
from ..arch.platform import XEON, Platform
from ..services.definition import ServiceDefinition
from ..sim.engine import Environment, Event
from ..sim.ps import ProcessorSharingServer
from ..sim.resources import Resource

__all__ = ["Machine", "ServiceInstance", "NIC_10G_KB_PER_S"]

#: 10 GbE expressed in KB/s (the paper's ToR links).
NIC_10G_KB_PER_S = 1.25e6


class Machine:
    """One physical (or virtual) server."""

    def __init__(self, env: Environment, machine_id: str,
                 platform: Platform,
                 nic_bandwidth_kb_s: float = NIC_10G_KB_PER_S,
                 zone: str = "cloud"):
        if nic_bandwidth_kb_s <= 0:
            raise ValueError("nic_bandwidth_kb_s must be > 0")
        self.env = env
        self.machine_id = machine_id
        self.platform = platform
        self.zone = zone
        self.freq = FrequencyModel(platform.nominal_freq_ghz,
                                   platform.min_freq_ghz)
        self.nic_bandwidth_kb_s = nic_bandwidth_kb_s
        self.nic_tx = Resource(env, capacity=1)
        self.nic_rx = Resource(env, capacity=1)
        self.slow_factor = 1.0
        #: Crash state (chaos injection): a down machine fails health
        #: probes and is skipped by placement.  The flag is pure
        #: signal — draining/freezing its replicas is the fault
        #: injector's job (see :mod:`repro.chaos.faults`).
        self.down = False
        self.instances: List["ServiceInstance"] = []
        #: Optional machine-wide CPU shared by colocated instances
        #: (see :meth:`enable_shared_cpu`); None means every instance
        #: gets its own pinned cores.
        self.shared_cpu: Optional[ProcessorSharingServer] = None

    def enable_shared_cpu(self) -> ProcessorSharingServer:
        """Switch this machine to a single shared processor-sharing CPU.

        Instances created with ``share_machine_cpu=True`` then compete
        for the machine's full core pool — the colocation-interference
        regime of bin-packed deployments (Fig. 1), where one tenant's
        burst slows its neighbours."""
        if self.shared_cpu is None:
            self.shared_cpu = ProcessorSharingServer(
                self.env, cores=self.platform.cores_per_server,
                rate=max(self.core_speed(), 1e-9))
        return self.shared_cpu

    def core_speed(self) -> float:
        """Effective single-thread speed vs. the nominal Xeon core."""
        return (self.platform.single_thread_factor
                * (self.freq.current_ghz / XEON.nominal_freq_ghz)
                * self.slow_factor)

    def set_frequency(self, freq_ghz: float) -> None:
        """Apply a RAPL cap and refresh all hosted instances."""
        self.freq.cap(freq_ghz)
        if self.shared_cpu is not None:
            self.shared_cpu.set_rate(max(self.core_speed(), 1e-9))
        for inst in self.instances:
            inst.refresh_rate()

    def set_slow_factor(self, factor: float) -> None:
        """Degrade (or restore) this server; 1.0 is healthy."""
        if factor <= 0:
            raise ValueError("slow factor must be > 0")
        self.slow_factor = factor
        if self.shared_cpu is not None:
            self.shared_cpu.set_rate(max(self.core_speed(), 1e-9))
        for inst in self.instances:
            inst.refresh_rate()

    @property
    def allocated_cores(self) -> int:
        """Cores claimed by hosted instances."""
        return sum(inst.cores for inst in self.instances)

    @property
    def free_cores(self) -> int:
        """Cores still available for placement."""
        return self.platform.cores_per_server - self.allocated_cores

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Machine {self.machine_id} {self.platform.name} "
                f"{len(self.instances)} instances>")


class _SharedCpuView:
    """A per-instance facade over a machine-wide shared CPU.

    Work submitted through the view is rescaled so the instance's
    frequency-sensitivity semantics survive the shared rate: a job of
    ``w`` nominal seconds is submitted as ``w*(beta + (1-beta)*speed)``
    against a server running at ``speed``, which alone takes exactly
    ``w*(beta/speed + 1-beta)`` — identical to the dedicated model.
    Busy-time is accounted per instance from submitted work (exact when
    rates are static, an approximation across DVFS changes)."""

    def __init__(self, instance: "ServiceInstance",
                 server: ProcessorSharingServer):
        self.instance = instance
        self.server = server
        self._busy = 0.0

    @property
    def rate(self) -> float:
        return self.server.rate

    @property
    def cores(self) -> int:
        return self.server.cores

    def _translate(self, work: float) -> float:
        speed = (self.instance.machine.core_speed()
                 * self.instance.speed_factor)
        beta = self.instance.definition.freq_sensitivity
        return work * (beta + (1.0 - beta) * speed)

    def service(self, work: float) -> Event:
        scaled = self._translate(work)
        self._busy += scaled / max(self.server.rate, 1e-12)
        return self.server.service(scaled)

    def set_rate(self, rate: float) -> None:
        """No-op: the machine owns the shared server's rate."""

    def set_cores(self, cores: int) -> None:
        """No-op: the machine owns the shared server's core pool."""

    def busy_time(self) -> float:
        return self._busy

    def utilization_since(self, start: Optional[float] = None) -> float:
        return self.server.utilization_since(start)

    def reset_utilization(self) -> None:
        self.server.reset_utilization()

    def instantaneous_utilization(self) -> float:
        return self.server.instantaneous_utilization()

    @property
    def active_jobs(self) -> int:
        return self.server.active_jobs


class ServiceInstance:
    """One running replica of a service on a machine.

    With ``share_machine_cpu=True`` the replica competes for the
    machine's shared core pool (colocation interference) instead of
    owning ``cores`` pinned cores."""

    def __init__(self, env: Environment, definition: ServiceDefinition,
                 machine: Machine, cores: int = 1,
                 instance_id: Optional[str] = None,
                 share_machine_cpu: bool = False):
        if cores < 1:
            raise ValueError("cores must be >= 1")
        self.env = env
        self.definition = definition
        self.machine = machine
        self.cores = cores
        self.instance_id = instance_id or (
            f"{definition.name}-{len(machine.instances)}@{machine.machine_id}")
        #: Per-instance degradation (a sick container/VM rather than a
        #: sick machine); composes with the machine's slow factor.
        self.speed_factor = 1.0
        self.shared = share_machine_cpu
        if share_machine_cpu:
            self.cpu = _SharedCpuView(self, machine.enable_shared_cpu())
        else:
            self.cpu = ProcessorSharingServer(env, cores=cores,
                                              rate=self._rate())
        #: Worker-pool admission (HTTP/1 era blocking threads); ``None``
        #: means unbounded concurrency.
        self.workers: Optional[Resource] = None
        #: Accounting for Figs. 3/14/15: nominal CPU seconds spent on
        #: application logic vs. network (kernel TCP) processing.
        self.app_cpu_seconds = 0.0
        self.net_cpu_seconds = 0.0
        #: Requests currently resident (admitted or queued) in this node.
        self.outstanding = 0
        machine.instances.append(self)

    def set_workers(self, max_workers: int) -> None:
        """Cap concurrent in-flight requests at this instance."""
        self.workers = Resource(self.env, capacity=max_workers)

    def _rate(self) -> float:
        speed = self.machine.core_speed() * self.speed_factor
        beta = self.definition.freq_sensitivity
        denominator = beta / speed + (1.0 - beta)
        return 1.0 / denominator

    def refresh_rate(self) -> None:
        """Recompute the CPU rate after a frequency/slow-factor change."""
        self.cpu.set_rate(self._rate())

    def set_speed_factor(self, factor: float) -> None:
        """Degrade (or restore) just this replica; 1.0 is healthy."""
        if factor <= 0:
            raise ValueError("speed factor must be > 0")
        self.speed_factor = factor
        self.refresh_rate()

    def compute(self, work: float) -> Event:
        """Run ``work`` nominal CPU-seconds of application logic."""
        self.app_cpu_seconds += work / self.cpu.rate
        return self.cpu.service(work)

    def network_compute(self, work: float) -> Event:
        """Run ``work`` nominal CPU-seconds of kernel/TCP processing."""
        self.net_cpu_seconds += work / self.cpu.rate
        return self.cpu.service(work)

    def utilization(self) -> float:
        """Instantaneous CPU busy fraction."""
        return self.cpu.instantaneous_utilization()

    def detach(self) -> None:
        """Remove from the hosting machine (scale-in)."""
        if self in self.machine.instances:
            self.machine.instances.remove(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Instance {self.instance_id} cores={self.cores}>"
