"""Fault injection: machine outages and recovery.

Complements the slow-server and routing-misconfiguration injectors used
by the Fig. 19/22 experiments with hard failures: a machine goes down,
its replicas stop taking traffic, and capacity returns after a repair
time.  Singleton tiers (only replica lives on the failed machine)
cannot be drained, so they are frozen at a crawl instead — which is
exactly the scenario where a microservice graph's blast radius dwarfs a
replicated monolith's.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.engine import Environment
from .machine import Machine

__all__ = ["MachineOutage"]

#: Effective speed of a "down" singleton's instance: not zero (the DES
#: needs progress for queued work once the machine returns) but slow
#: enough that every request routed there blows any QoS.
_FROZEN_FACTOR = 0.02


class MachineOutage:
    """Take one machine out of service, then repair it."""

    def __init__(self, env: Environment, deployment, machine: Machine):
        self.env = env
        self.deployment = deployment
        self.machine = machine
        self.drained: List = []
        self.frozen = False
        self.active = False
        self._prior_slow_factor: Optional[float] = None

    def fail(self) -> None:
        """Remove the machine's replicas from rotation; freeze the
        ones that cannot be removed (singletons)."""
        if self.active:
            raise RuntimeError("machine already failed")
        self.active = True
        for inst in list(self.machine.instances):
            service = inst.definition.name
            lb = self.deployment.load_balancer(service)
            if len(lb.instances) > 1 and inst in lb.instances:
                lb.remove(inst)
                self.drained.append(inst)
        if len(self.drained) < len(self.machine.instances):
            self.frozen = True
        if self.frozen:
            self._prior_slow_factor = self.machine.slow_factor
            self.machine.set_slow_factor(_FROZEN_FACTOR)

    def repair(self) -> None:
        """Bring the machine back: restore speed, re-add replicas."""
        if not self.active:
            raise RuntimeError("machine is not failed")
        self.active = False
        if self.frozen:
            # Restore whatever factor the machine ran at before the
            # outage froze it — a degraded machine stays degraded.
            self.machine.set_slow_factor(self._prior_slow_factor)
            self._prior_slow_factor = None
        for inst in self.drained:
            service = inst.definition.name
            self.deployment.load_balancer(service).add(inst)
        self.drained = []
        self.frozen = False

    def schedule(self, fail_at: float,
                 repair_after: Optional[float] = None) -> None:
        """Fail at ``fail_at`` (absolute sim time) and optionally
        repair ``repair_after`` seconds later."""
        if fail_at < self.env.now:
            raise ValueError("fail_at is in the past")

        def script():
            yield self.env.timeout(fail_at - self.env.now)
            self.fail()
            if repair_after is not None:
                yield self.env.timeout(repair_after)
                self.repair()

        self.env.process(script(), name="outage")
