"""Machine crash/restore mechanics and the legacy outage injector.

The low-level mechanics of taking one machine out of service live here
(shared by the chaos layer): drain its replicas from their load
balancers, freeze the ones that cannot be drained (singleton tiers),
and restore everything on repair.  Singleton tiers are frozen at a
crawl rather than zeroed — the DES needs progress for queued work once
the machine returns, and every request routed to a frozen replica blows
any QoS, which is exactly the scenario where a microservice graph's
blast radius dwarfs a replicated monolith's.

:class:`MachineOutage` is kept as a thin compatibility shim over the
:class:`~repro.chaos.faults.MachineCrash` fault; new code should build
a :class:`~repro.chaos.FaultSchedule` instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..sim.engine import Environment
from .machine import Machine, ServiceInstance

__all__ = ["MachineOutage", "CrashRecord", "crash_machine",
           "restore_machine"]

#: Effective speed of a "down" singleton's instance: not zero (the DES
#: needs progress for queued work once the machine returns) but slow
#: enough that every request routed there blows any QoS.
_FROZEN_FACTOR = 0.02


@dataclass
class CrashRecord:
    """What one machine crash changed, so restore can undo exactly it."""

    machine: Machine
    drained: List[ServiceInstance] = field(default_factory=list)
    frozen: bool = False
    prior_slow_factor: Optional[float] = None


def crash_machine(deployment, machine: Machine,
                  frozen_factor: float = _FROZEN_FACTOR) -> CrashRecord:
    """Take ``machine`` down: mark it, drain what can be drained, and
    freeze the rest.  Returns the record :func:`restore_machine` needs."""
    record = CrashRecord(machine=machine)
    machine.down = True
    for inst in list(machine.instances):
        service = inst.definition.name
        lb = deployment.load_balancer(service)
        if len(lb.instances) > 1 and inst in lb.instances:
            lb.remove(inst)
            record.drained.append(inst)
    if len(record.drained) < len(machine.instances):
        record.frozen = True
        record.prior_slow_factor = machine.slow_factor
        machine.set_slow_factor(frozen_factor)
    return record


def restore_machine(deployment, record: CrashRecord) -> None:
    """Bring a crashed machine back: restore its speed and re-add its
    drained replicas to rotation.

    Re-adding is guarded twice: an instance the balancer *already*
    contains is skipped (a health-checked failover may have restored it
    first — re-adding would double its traffic share), and an instance
    that is no longer a replica of its service is skipped (the
    autoscaler or failover controller retired it mid-outage)."""
    machine = record.machine
    machine.down = False
    if record.frozen:
        # Restore whatever factor the machine ran at before the outage
        # froze it — a degraded machine stays degraded.
        machine.set_slow_factor(record.prior_slow_factor)
    for inst in record.drained:
        service = inst.definition.name
        if inst not in deployment.instances_of(service):
            continue
        lb = deployment.load_balancer(service)
        if inst in lb.instances:
            continue
        lb.add(inst)
    record.drained = []
    record.frozen = False
    record.prior_slow_factor = None


class MachineOutage:
    """Take one machine out of service, then repair it.

    Thin compatibility alias over :class:`repro.chaos.faults.
    MachineCrash` (no cold-cache restart penalty, to preserve the
    historical behaviour); prefer composing faults into a
    :class:`~repro.chaos.FaultSchedule`.
    """

    def __init__(self, env: Environment, deployment, machine: Machine):
        # Imported lazily: repro.chaos builds on this module.
        from ..chaos.faults import ChaosContext, MachineCrash
        self.env = env
        self.deployment = deployment
        self.machine = machine
        self._fault = MachineCrash(machine, cold_cache=False)
        self._ctx = ChaosContext(deployment)

    @property
    def active(self) -> bool:
        """True while the machine is failed."""
        return self._fault.active

    @property
    def drained(self) -> List[ServiceInstance]:
        """Replicas currently drained from their balancers."""
        record = self._fault.record
        return record.drained if record is not None else []

    @property
    def frozen(self) -> bool:
        """True when a singleton replica froze the machine instead."""
        record = self._fault.record
        return record.frozen if record is not None else False

    def fail(self) -> None:
        """Remove the machine's replicas from rotation; freeze the
        ones that cannot be removed (singletons)."""
        if self.active:
            raise RuntimeError("machine already failed")
        self._fault.inject(self._ctx)

    def repair(self) -> None:
        """Bring the machine back: restore speed, re-add replicas."""
        if not self.active:
            raise RuntimeError("machine is not failed")
        self._fault.revert(self._ctx)

    def schedule(self, fail_at: float,
                 repair_after: Optional[float] = None) -> None:
        """Fail at ``fail_at`` (absolute sim time) and optionally
        repair ``repair_after`` seconds later."""
        if fail_at < self.env.now:
            raise ValueError("fail_at is in the past")

        def script():
            yield self.env.timeout(fail_at - self.env.now)
            self.fail()
            if repair_after is not None:
                yield self.env.timeout(repair_after)
                self.repair()

        self.env.process(script(), name="outage")
