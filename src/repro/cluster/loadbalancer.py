"""Load-balancing policies for routing requests to service replicas.

Three policies cover the paper's scenarios:

* round-robin — the default for stateless tiers;
* least-outstanding — what a good L7 balancer does;
* key-hash — for sharded stateful tiers (timeline stores), where a
  user's data lives on a fixed replica.  This is what turns user-level
  request skew into per-replica hotspots (Fig. 22b).

A policy can be pinned to a single replica to model the routing
misconfiguration of Fig. 22a ("overloaded one instance of each
microservice, instead of load balancing requests across instances").
"""

from __future__ import annotations

from typing import List, Optional

from .machine import ServiceInstance

__all__ = ["LoadBalancer", "RoundRobin", "LeastOutstanding", "KeyHash"]


class LoadBalancer:
    """Base policy: holds the replica list and the pin override."""

    def __init__(self, instances: List[ServiceInstance]):
        if not instances:
            raise ValueError("load balancer needs at least one instance")
        self.instances = list(instances)
        self._pinned: Optional[int] = None

    def pin(self, index: int) -> None:
        """Route all traffic to one replica (fault injection)."""
        if not 0 <= index < len(self.instances):
            raise IndexError(f"no replica {index}")
        self._pinned = index

    def unpin(self) -> None:
        """Restore normal routing."""
        self._pinned = None

    def add(self, instance: ServiceInstance) -> None:
        """Register a new replica (scale-out)."""
        self.instances.append(instance)

    def remove(self, instance: ServiceInstance) -> None:
        """Deregister a replica (scale-in); the last replica stays."""
        if len(self.instances) <= 1:
            raise ValueError("cannot remove the last replica")
        self.instances.remove(instance)
        if self._pinned is not None and self._pinned >= len(self.instances):
            self._pinned = 0

    def pick(self, key: Optional[int] = None) -> ServiceInstance:
        """Select a replica for a request with optional routing key."""
        if self._pinned is not None:
            return self.instances[self._pinned]
        return self._select(key)

    def _select(self, key: Optional[int]) -> ServiceInstance:
        raise NotImplementedError


class RoundRobin(LoadBalancer):
    """Cycle through replicas in order."""

    def __init__(self, instances: List[ServiceInstance]):
        super().__init__(instances)
        self._next = 0

    def _select(self, key: Optional[int]) -> ServiceInstance:
        inst = self.instances[self._next % len(self.instances)]
        self._next += 1
        return inst


class LeastOutstanding(LoadBalancer):
    """Send to the replica with the fewest resident requests."""

    def _select(self, key: Optional[int]) -> ServiceInstance:
        return min(self.instances, key=lambda inst: inst.outstanding)


class KeyHash(LoadBalancer):
    """Route by key so each key's data lives on a fixed replica.

    Requests without a key (no user attribution) fall back to
    round-robin — they carry no affinity, and pinning them to one shard
    would fabricate a hotspot."""

    def __init__(self, instances: List[ServiceInstance]):
        super().__init__(instances)
        self._next = 0

    def _select(self, key: Optional[int]) -> ServiceInstance:
        if key is None:
            inst = self.instances[self._next % len(self.instances)]
            self._next += 1
            return inst
        return self.instances[key % len(self.instances)]
