"""Shared scaling-action bookkeeping for every scaling controller.

Three controllers change replica counts at runtime — the
utilization-threshold autoscaler (the paper's insufficient baseline),
the trace-driven dependency-aware autoscaler (the Sec. 6 fix), and the
proactive mitigator of :mod:`repro.predict` (which scales *before* the
violation).  They all need the same bookkeeping: an event log for
post-hoc inspection, per-service replica-count step series, pending
scale-outs that must count against instance bounds while provisioning,
and the startup-delay process that makes new capacity live only after
a realistic provisioning lag.  This module holds that machinery once so
policy modules contain nothing but policy.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.engine import Environment
from ..stats.timeseries import StepSeries

__all__ = ["AutoscalerEvent", "ScalingBookkeeper"]


class AutoscalerEvent:
    """One scaling action, for post-hoc inspection."""

    def __init__(self, time: float, service: str, action: str,
                 utilization: float, instances: int):
        self.time = time
        self.service = service
        self.action = action
        self.utilization = utilization
        self.instances = instances

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{self.action} {self.service} at t={self.time:.1f} "
                f"util={self.utilization:.2f} n={self.instances}>")


class ScalingBookkeeper:
    """Event log + replica accounting + provisioning for one policy.

    The policy decides *what* to scale; the bookkeeper owns everything
    that follows: it appends an :class:`AutoscalerEvent`, tracks the
    scale-out as pending until the ``startup_delay`` elapses (so bounds
    checks see in-flight capacity), adds/removes the instance on the
    deployment, and steps the per-service replica-count series.
    """

    def __init__(self, env: Environment, deployment,
                 startup_delay: float = 10.0,
                 max_instances: int = 64):
        if startup_delay < 0:
            raise ValueError("startup_delay must be >= 0")
        if max_instances < 1:
            raise ValueError("max_instances must be >= 1")
        self.env = env
        self.deployment = deployment
        self.startup_delay = startup_delay
        self.max_instances = max_instances
        self.events: List[AutoscalerEvent] = []
        self.instance_counts: Dict[str, StepSeries] = {}
        self._pending: Dict[str, int] = {}

    def watch(self, services) -> None:
        """Start replica-count step series for ``services`` at now."""
        for name in services:
            self.instance_counts[name] = StepSeries(
                initial=len(self.deployment.instances_of(name)),
                start=self.env.now)

    def planned_instances(self, service: str) -> int:
        """Live replicas plus scale-outs still provisioning."""
        return (len(self.deployment.instances_of(service))
                + self._pending.get(service, 0))

    def can_scale_out(self, service: str) -> bool:
        """True while the planned count is under ``max_instances``."""
        return self.planned_instances(service) < self.max_instances

    def scale_out(self, service: str, utilization: float,
                  action: str = "scale_out") -> Optional[AutoscalerEvent]:
        """Begin one scale-out (new capacity live after the delay)."""
        if not self.can_scale_out(service):
            return None
        n = self.planned_instances(service)
        self._pending[service] = self._pending.get(service, 0) + 1
        event = AutoscalerEvent(self.env.now, service, action,
                                utilization, n + 1)
        self.events.append(event)
        self.env.process(self._provision(service),
                         name=f"provision-{service}")
        return event

    def scale_in(self, service: str, utilization: float,
                 action: str = "scale_in") -> AutoscalerEvent:
        """Remove one replica immediately and log the action."""
        self.deployment.remove_instance(service)
        count = len(self.deployment.instances_of(service))
        event = AutoscalerEvent(self.env.now, service, action,
                                utilization, count)
        self.events.append(event)
        series = self.instance_counts.get(service)
        if series is not None:
            series.set(self.env.now, count)
        return event

    def first_action(self, service: str,
                     action: str = "scale_out") -> Optional[float]:
        """Sim time of the first ``action`` on ``service``, if any."""
        for event in self.events:
            if event.service == service and event.action == action:
                return event.time
        return None

    def _provision(self, service: str):
        """Model instance startup latency before capacity goes live."""
        yield self.env.timeout(self.startup_delay)
        self.deployment.add_instance(service)
        self._pending[service] -= 1
        count = len(self.deployment.instances_of(service))
        series = self.instance_counts.get(service)
        if series is not None:
            series.set(self.env.now, count)
