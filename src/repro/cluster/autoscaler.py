"""Utilization-threshold autoscaling.

This is the autoscaler the paper argues is *insufficient* for
microservices (Sec. 6): it watches per-tier CPU utilization and scales
out any tier above a threshold (70 % by default, matching the EC2
default the paper cites).  It has no notion of inter-tier dependencies,
so under backpressure it scales the busy-waiting victim instead of the
culprit (Fig. 17 case B, Fig. 20).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.engine import Environment
from ..stats.timeseries import StepSeries
from .scaling import AutoscalerEvent, ScalingBookkeeper

__all__ = ["UtilizationAutoscaler", "AutoscalerEvent"]


class UtilizationAutoscaler:
    """Periodic per-service scale-out/in on mean CPU utilization.

    Parameters mirror real cloud autoscalers: a sampling ``period``, a
    ``scale_out_threshold`` (default 0.7 per the EC2 default), a
    ``scale_in_threshold``, a provisioning ``startup_delay`` before new
    capacity is live, and per-service instance bounds.
    """

    def __init__(self, env: Environment, deployment,
                 period: float = 5.0,
                 scale_out_threshold: float = 0.7,
                 scale_in_threshold: float = 0.2,
                 startup_delay: float = 10.0,
                 max_instances: int = 64,
                 cooldown: float = 10.0,
                 services: Optional[List[str]] = None):
        if not 0 < scale_in_threshold < scale_out_threshold <= 1.0:
            raise ValueError("need 0 < scale_in < scale_out <= 1")
        if period <= 0 or startup_delay < 0 or cooldown < 0:
            raise ValueError("period must be > 0; delays must be >= 0")
        self.env = env
        self.deployment = deployment
        self.period = period
        self.scale_out_threshold = scale_out_threshold
        self.scale_in_threshold = scale_in_threshold
        self.cooldown = cooldown
        self.services = services
        self.bookkeeper = ScalingBookkeeper(
            env, deployment, startup_delay=startup_delay,
            max_instances=max_instances)
        self._last_action: Dict[str, float] = {}
        self._prev_busy: Dict[int, float] = {}
        self._last_sample = env.now
        self._process = None

    # Shared bookkeeping, exposed under the historical names.
    @property
    def events(self) -> List[AutoscalerEvent]:
        """Scaling actions taken so far, oldest first."""
        return self.bookkeeper.events

    @property
    def instance_counts(self) -> Dict[str, StepSeries]:
        """Per-service replica-count step series."""
        return self.bookkeeper.instance_counts

    @property
    def startup_delay(self) -> float:
        return self.bookkeeper.startup_delay

    @property
    def max_instances(self) -> int:
        return self.bookkeeper.max_instances

    def start(self) -> None:
        """Begin the control loop."""
        if self._process is not None:
            raise RuntimeError("autoscaler already started")
        self.bookkeeper.watch(self._watched())
        self._process = self.env.process(self._loop(), name="autoscaler")

    def _watched(self) -> List[str]:
        if self.services is not None:
            return self.services
        return list(self.deployment.service_names())

    def _utilization(self, service: str, dt: float) -> float:
        """Mean tier CPU utilization over the last control period, from
        cumulative busy-time deltas (non-destructive to other monitors).

        CPU is what real utilization autoscalers watch — and because
        synchronous worker pools *busy-wait* on blocked downstream
        calls (see Deployment's sync busy-wait model), a backpressured
        front tier looks genuinely CPU-saturated here, which is exactly
        how Fig. 17's case B tricks this policy."""
        instances = self.deployment.instances_of(service)
        delta = 0.0
        cores = 0
        for inst in instances:
            busy = inst.cpu.busy_time()
            delta += busy - self._prev_busy.get(id(inst), 0.0)
            self._prev_busy[id(inst)] = busy
            cores += inst.cores
        if dt <= 0 or cores == 0:
            return 0.0
        return min(1.0, delta / (dt * cores))

    def _loop(self):
        while True:
            yield self.env.timeout(self.period)
            dt = self.env.now - self._last_sample
            self._last_sample = self.env.now
            for service in self._watched():
                util = self._utilization(service, dt)
                now = self.env.now
                if now - self._last_action.get(service, -1e18) < self.cooldown:
                    continue
                n = self.bookkeeper.planned_instances(service)
                if util > self.scale_out_threshold \
                        and self.bookkeeper.can_scale_out(service):
                    self._last_action[service] = now
                    self.bookkeeper.scale_out(service, util)
                elif util < self.scale_in_threshold and n > 1:
                    self._last_action[service] = now
                    self.bookkeeper.scale_in(service, util)
