"""Utilization-threshold autoscaling.

This is the autoscaler the paper argues is *insufficient* for
microservices (Sec. 6): it watches per-tier CPU utilization and scales
out any tier above a threshold (70 % by default, matching the EC2
default the paper cites).  It has no notion of inter-tier dependencies,
so under backpressure it scales the busy-waiting victim instead of the
culprit (Fig. 17 case B, Fig. 20).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.engine import Environment
from ..stats.timeseries import StepSeries

__all__ = ["UtilizationAutoscaler", "AutoscalerEvent"]


class AutoscalerEvent:
    """One scaling action, for post-hoc inspection."""

    def __init__(self, time: float, service: str, action: str,
                 utilization: float, instances: int):
        self.time = time
        self.service = service
        self.action = action
        self.utilization = utilization
        self.instances = instances

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<{self.action} {self.service} at t={self.time:.1f} "
                f"util={self.utilization:.2f} n={self.instances}>")


class UtilizationAutoscaler:
    """Periodic per-service scale-out/in on mean CPU utilization.

    Parameters mirror real cloud autoscalers: a sampling ``period``, a
    ``scale_out_threshold`` (default 0.7 per the EC2 default), a
    ``scale_in_threshold``, a provisioning ``startup_delay`` before new
    capacity is live, and per-service instance bounds.
    """

    def __init__(self, env: Environment, deployment,
                 period: float = 5.0,
                 scale_out_threshold: float = 0.7,
                 scale_in_threshold: float = 0.2,
                 startup_delay: float = 10.0,
                 max_instances: int = 64,
                 cooldown: float = 10.0,
                 services: Optional[List[str]] = None):
        if not 0 < scale_in_threshold < scale_out_threshold <= 1.0:
            raise ValueError("need 0 < scale_in < scale_out <= 1")
        if period <= 0 or startup_delay < 0 or cooldown < 0:
            raise ValueError("period must be > 0; delays must be >= 0")
        self.env = env
        self.deployment = deployment
        self.period = period
        self.scale_out_threshold = scale_out_threshold
        self.scale_in_threshold = scale_in_threshold
        self.startup_delay = startup_delay
        self.max_instances = max_instances
        self.cooldown = cooldown
        self.services = services
        self.events: List[AutoscalerEvent] = []
        self.instance_counts: Dict[str, StepSeries] = {}
        self._last_action: Dict[str, float] = {}
        self._pending_out: Dict[str, int] = {}
        self._prev_busy: Dict[int, float] = {}
        self._last_sample = env.now
        self._process = None

    def start(self) -> None:
        """Begin the control loop."""
        if self._process is not None:
            raise RuntimeError("autoscaler already started")
        for name in self._watched():
            self.instance_counts[name] = StepSeries(
                initial=len(self.deployment.instances_of(name)),
                start=self.env.now)
        self._process = self.env.process(self._loop(), name="autoscaler")

    def _watched(self) -> List[str]:
        if self.services is not None:
            return self.services
        return list(self.deployment.service_names())

    def _utilization(self, service: str, dt: float) -> float:
        """Mean tier CPU utilization over the last control period, from
        cumulative busy-time deltas (non-destructive to other monitors).

        CPU is what real utilization autoscalers watch — and because
        synchronous worker pools *busy-wait* on blocked downstream
        calls (see Deployment's sync busy-wait model), a backpressured
        front tier looks genuinely CPU-saturated here, which is exactly
        how Fig. 17's case B tricks this policy."""
        instances = self.deployment.instances_of(service)
        delta = 0.0
        cores = 0
        for inst in instances:
            busy = inst.cpu.busy_time()
            delta += busy - self._prev_busy.get(id(inst), 0.0)
            self._prev_busy[id(inst)] = busy
            cores += inst.cores
        if dt <= 0 or cores == 0:
            return 0.0
        return min(1.0, delta / (dt * cores))

    def _loop(self):
        while True:
            yield self.env.timeout(self.period)
            dt = self.env.now - self._last_sample
            self._last_sample = self.env.now
            for service in self._watched():
                util = self._utilization(service, dt)
                now = self.env.now
                if now - self._last_action.get(service, -1e18) < self.cooldown:
                    continue
                n = (len(self.deployment.instances_of(service))
                     + self._pending_out.get(service, 0))
                if util > self.scale_out_threshold and n < self.max_instances:
                    self._last_action[service] = now
                    self._pending_out[service] = \
                        self._pending_out.get(service, 0) + 1
                    self.events.append(AutoscalerEvent(
                        now, service, "scale_out", util, n + 1))
                    self.env.process(self._provision(service))
                elif util < self.scale_in_threshold and n > 1:
                    self._last_action[service] = now
                    self.deployment.remove_instance(service)
                    count = len(self.deployment.instances_of(service))
                    self.events.append(AutoscalerEvent(
                        now, service, "scale_in", util, count))
                    self.instance_counts[service].set(now, count)

    def _provision(self, service: str):
        """Model instance startup latency before capacity goes live."""
        yield self.env.timeout(self.startup_delay)
        self.deployment.add_instance(service)
        self._pending_out[service] -= 1
        count = len(self.deployment.instances_of(service))
        self.instance_counts[service].set(self.env.now, count)
