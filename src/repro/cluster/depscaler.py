"""Dependency-aware autoscaling.

Section 6's conclusion: utilization-threshold autoscalers "are not
expressive enough to account for the impact each pair-wise dependency
has on end-to-end performance" — they scale busy-waiting victims
instead of culprits and take long to converge.  This module implements
the fix the paper motivates (and that follow-on systems such as the
authors' later work pursue): use the *distributed traces* to find the
tier that is actually responsible for end-to-end latency, then scale
that tier.

Culprit identification per control period:

1. take the traces completed in the last period;
2. compute each tier's mean **exclusive** latency (time not spent
   waiting on its own downstream calls) and its inflation over the
   tier's healthy baseline;
3. scale out the tier with the highest inflated exclusive contribution
   — not the highest CPU utilization.

A blocked front-end shows high *inclusive* latency but low exclusive
time, so it is never misdiagnosed the way Fig. 17's case B misleads the
utilization policy.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim.engine import Environment
from ..stats.timeseries import StepSeries
from ..tracing.analysis import per_service_breakdown, per_service_exclusive
from ..tracing.collector import TraceCollector
from .scaling import AutoscalerEvent, ScalingBookkeeper

__all__ = ["DependencyAwareAutoscaler"]


class DependencyAwareAutoscaler:
    """Trace-driven culprit scaling (the Sec. 6 'what it would take')."""

    def __init__(self, env: Environment, deployment,
                 collector: Optional[TraceCollector] = None,
                 period: float = 5.0,
                 qos_latency: Optional[float] = None,
                 inflation_threshold: float = 1.5,
                 startup_delay: float = 10.0,
                 max_instances: int = 64,
                 baseline_window: float = 15.0):
        if period <= 0 or startup_delay < 0:
            raise ValueError("period must be > 0; delay must be >= 0")
        if inflation_threshold <= 1.0:
            raise ValueError("inflation_threshold must be > 1")
        self.env = env
        self.deployment = deployment
        self.collector = collector or deployment.collector
        self.period = period
        self.qos_latency = qos_latency if qos_latency is not None \
            else deployment.app.qos_latency
        self.inflation_threshold = inflation_threshold
        self.baseline_window = baseline_window
        self.bookkeeper = ScalingBookkeeper(
            env, deployment, startup_delay=startup_delay,
            max_instances=max_instances)
        self._baseline: Dict[str, float] = {}
        self._seen_traces = 0
        self._process = None

    # Shared bookkeeping, exposed under the historical names.
    @property
    def events(self) -> List[AutoscalerEvent]:
        """Scaling actions taken so far, oldest first."""
        return self.bookkeeper.events

    @property
    def instance_counts(self) -> Dict[str, StepSeries]:
        """Per-service replica-count step series."""
        return self.bookkeeper.instance_counts

    @property
    def startup_delay(self) -> float:
        return self.bookkeeper.startup_delay

    @property
    def max_instances(self) -> int:
        return self.bookkeeper.max_instances

    def start(self) -> None:
        """Begin the control loop."""
        if self._process is not None:
            raise RuntimeError("autoscaler already started")
        self.bookkeeper.watch(self.deployment.service_names())
        self._process = self.env.process(self._loop(), name="dep-scaler")

    # -- internals -------------------------------------------------------
    def _recent_traces(self):
        new, self._seen_traces = self.collector.traces_since(
            self._seen_traces)
        return new

    def _qos_violated(self, traces) -> bool:
        if not traces:
            return False
        latencies = sorted(t.latency for t in traces)
        p99 = latencies[min(len(latencies) - 1,
                            int(0.99 * len(latencies)))]
        return p99 > self.qos_latency

    @staticmethod
    def _processing_time(traces) -> Dict[str, float]:
        """Mean exclusive *processing* time per tier.

        Time spent blocked — waiting for a worker slot or an HTTP
        connection — is subtracted: a blocked tier is a victim of
        backpressure, not a culprit, and charging it would reproduce
        exactly the misdiagnosis this scaler exists to avoid."""
        exclusive = per_service_exclusive(traces)
        breakdown = per_service_breakdown(traces)
        out = {}
        for service, value in exclusive.items():
            blocked = breakdown.get(service, {}).get("block", 0.0)
            out[service] = max(0.0, value - blocked)
        return out

    def _loop(self):
        # Build healthy baselines first.
        yield self.env.timeout(self.baseline_window)
        baseline_traces = self._recent_traces()
        if baseline_traces:
            self._baseline = self._processing_time(baseline_traces)
        while True:
            yield self.env.timeout(self.period)
            traces = self._recent_traces()
            if not traces:
                continue
            if not self._baseline:
                self._baseline = self._processing_time(traces)
                continue
            if not self._qos_violated(traces):
                continue
            culprit = self._find_culprit(traces)
            if culprit is None:
                continue
            if not self.bookkeeper.can_scale_out(culprit):
                continue
            self.bookkeeper.scale_out(
                culprit, self.deployment.utilization(culprit))

    def _find_culprit(self, traces) -> Optional[str]:
        """The tier with the largest inflated processing contribution."""
        processing = self._processing_time(traces)
        best = None
        best_score = 0.0
        for service, value in processing.items():
            base = self._baseline.get(service)
            if base is None or base <= 0:
                continue
            inflation = value / base
            if inflation < self.inflation_threshold:
                continue
            # Weight by absolute contribution so a tiny tier inflating
            # 10x doesn't outrank the tier adding milliseconds.
            score = (value - base)
            if score > best_score:
                best_score = score
                best = service
        return best
