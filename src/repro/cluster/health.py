"""Health checking and failover: detection as a modeled process.

The chaos layer injects failures; this module models how the control
plane *notices* and *reacts* — because recovery behaviour (detection
latency, ejection, replacement provisioning) is a property of the
system under test, not a line in the fault script.

A :class:`HealthChecker` probes every replica on a fixed cadence.  A
replica that fails ``unhealthy_threshold`` consecutive probes is
*detected* (so detection latency is roughly ``probe_interval x
unhealthy_threshold``, exactly the knob real orchestrators trade
against false positives), ejected from its load balancer while
redundancy remains, and — when ``replace`` is on — scheduled for
replacement after a provisioning delay.  Once the replacement is live,
a still-dead replica is retired; this is how a *frozen singleton* (see
:mod:`repro.cluster.faults`) finally leaves rotation: the balancer
refuses to drop its last replica, so the dead one keeps taking traffic
until the replacement exists.

Probes come in two strengths.  A *liveness* probe only checks that the
replica answers (its machine is up).  A *latency-aware* probe also
compares the replica's effective speed against the platform's healthy
baseline, which is what it takes to catch a **gray failure** — a
replica that answers promptly enough to look alive while running at a
quarter speed.  ``false_positive_rate`` models probe flakiness: each
healthy-replica probe spuriously fails with that probability, drawn
from the deployment's seeded RNG streams (and only when the rate is
non-zero, so configured-off checkers never perturb determinism).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .machine import ServiceInstance

__all__ = ["HealthCheckConfig", "HealthChecker", "HealthEvent"]


@dataclass
class HealthCheckConfig:
    """Knobs of the probe/eject/replace control loop."""

    #: Seconds between probe rounds.
    probe_interval: float = 0.5
    #: Consecutive failed probes before a replica is declared down.
    unhealthy_threshold: int = 3
    #: Consecutive passing probes before a down replica re-enters.
    healthy_threshold: int = 2
    #: Probability a probe of a healthy replica spuriously fails.
    false_positive_rate: float = 0.0
    #: Latency-aware probes also flag replicas running far below the
    #: platform's healthy speed (gray failures); liveness-only probes
    #: (False) miss them.
    latency_aware: bool = True
    #: A replica below this fraction of healthy speed fails a
    #: latency-aware probe.
    slow_speed_threshold: float = 0.5
    #: Provision a replacement replica for confirmed-dead instances.
    replace: bool = True
    #: Seconds to provision a replacement (schedule, pull, warm up).
    provision_delay: float = 3.0
    #: Replacement budget per service (caps reschedule storms when a
    #: correlated outage kills many replicas at once).
    max_replacements: int = 2

    def __post_init__(self):
        if self.probe_interval <= 0:
            raise ValueError("probe_interval must be > 0")
        if self.unhealthy_threshold < 1 or self.healthy_threshold < 1:
            raise ValueError("probe thresholds must be >= 1")
        if not 0.0 <= self.false_positive_rate < 1.0:
            raise ValueError("false_positive_rate must be in [0, 1)")
        if not 0.0 < self.slow_speed_threshold <= 1.0:
            raise ValueError("slow_speed_threshold must be in (0, 1]")
        if self.provision_delay < 0:
            raise ValueError("provision_delay must be >= 0")


@dataclass
class HealthEvent:
    """One control-plane action, timestamped in sim time."""

    time: float
    service: str
    instance: str
    kind: str  # detected | ejected | replacement_started |
    #          # replacement_live | retired | recovered | restored
    detail: str = ""


@dataclass
class _ReplicaState:
    """Probe bookkeeping for one replica."""

    fails: int = 0
    oks: int = 0
    unhealthy: bool = False
    ejected: bool = False
    replacement_pending: bool = False


class HealthChecker:
    """Probe-driven failure detection, ejection, and replacement."""

    def __init__(self, deployment,
                 config: Optional[HealthCheckConfig] = None,
                 services: Optional[Sequence[str]] = None):
        self.deployment = deployment
        self.env = deployment.env
        self.config = config or HealthCheckConfig()
        self._services = sorted(services) if services is not None \
            else None
        self.events: List[HealthEvent] = []
        self._state: Dict[str, _ReplicaState] = {}
        self._replacements: Dict[str, int] = {}
        self._process = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "HealthChecker":
        """Begin probing (call before the experiment runs)."""
        if self._process is None:
            self._process = self.env.process(self._loop(),
                                             name="health-checker")
        return self

    # -- introspection -------------------------------------------------
    def first_detection(self, after: float = 0.0) -> Optional[float]:
        """Sim time of the first detection at/after ``after``."""
        for event in self.events:
            if event.kind == "detected" and event.time >= after:
                return event.time
        return None

    def unhealthy_count(self) -> int:
        """Replicas currently confirmed unhealthy."""
        return sum(1 for state in self._state.values()
                   if state.unhealthy)

    # -- probe model ---------------------------------------------------
    def _ground_truth(self, inst: ServiceInstance) -> bool:
        if inst.machine.down:
            return False
        if self.config.latency_aware:
            healthy = inst.machine.platform.single_thread_factor
            effective = inst.machine.core_speed() * inst.speed_factor
            if effective < self.config.slow_speed_threshold * healthy:
                return False
        return True

    def _probe(self, service: str, inst: ServiceInstance) -> bool:
        ok = self._ground_truth(inst)
        if ok and self.config.false_positive_rate > 0.0:
            draw = self.deployment.rng.uniform("health.probe", 0.0, 1.0)
            if draw < self.config.false_positive_rate:
                return False
        return ok

    # -- control loop --------------------------------------------------
    def _watched(self) -> List[str]:
        if self._services is not None:
            return self._services
        return sorted(self.deployment.service_names())

    def _loop(self):
        while True:
            yield self.env.timeout(self.config.probe_interval)
            for service in self._watched():
                for inst in list(self.deployment.instances_of(service)):
                    self._observe(service, inst, self._probe(service,
                                                             inst))

    def _observe(self, service: str, inst: ServiceInstance,
                 ok: bool) -> None:
        state = self._state.setdefault(inst.instance_id,
                                       _ReplicaState())
        if ok:
            state.oks += 1
            state.fails = 0
            if state.unhealthy \
                    and state.oks >= self.config.healthy_threshold:
                self._mark_recovered(service, inst, state)
        else:
            state.fails += 1
            state.oks = 0
            if not state.unhealthy \
                    and state.fails >= self.config.unhealthy_threshold:
                self._mark_down(service, inst, state)

    def _mark_down(self, service: str, inst: ServiceInstance,
                   state: _ReplicaState) -> None:
        state.unhealthy = True
        self._event(service, inst, "detected",
                    f"{state.fails} consecutive probe failures")
        lb = self.deployment.load_balancer(service)
        if inst in lb.instances and len(lb.instances) > 1:
            lb.remove(inst)
            state.ejected = True
            self._event(service, inst, "ejected")
        if self.config.replace and not state.replacement_pending:
            used = self._replacements.get(service, 0)
            if used < self.config.max_replacements:
                self._replacements[service] = used + 1
                state.replacement_pending = True
                self.env.process(self._provision(service, inst),
                                 name=f"health-replace:{service}")
                self._event(service, inst, "replacement_started",
                            f"provisioning {self.config.provision_delay:g}s")

    def _mark_recovered(self, service: str, inst: ServiceInstance,
                        state: _ReplicaState) -> None:
        state.unhealthy = False
        self._event(service, inst, "recovered",
                    f"{state.oks} consecutive probes passed")
        if inst not in self.deployment.instances_of(service):
            return  # retired while down; nothing to restore
        lb = self.deployment.load_balancer(service)
        if state.ejected and inst not in lb.instances:
            lb.add(inst)
            self._event(service, inst, "restored")
        state.ejected = False

    def _provision(self, service: str, dead: ServiceInstance):
        yield self.env.timeout(self.config.provision_delay)
        replacement = self.deployment.add_instance(service)
        self._event(service, replacement, "replacement_live",
                    f"replacing {dead.instance_id}")
        state = self._state.get(dead.instance_id)
        if state is not None:
            state.replacement_pending = False
        still_deployed = dead in self.deployment.instances_of(service)
        still_down = state is not None and state.unhealthy
        if still_deployed and still_down:
            # Now that redundancy exists, the dead replica — possibly a
            # frozen singleton the balancer refused to drop — retires.
            self.deployment.remove_instance(service, inst=dead)
            self._event(service, dead, "retired")
            self._state.pop(dead.instance_id, None)

    def _event(self, service: str, inst: ServiceInstance, kind: str,
               detail: str = "") -> None:
        self.events.append(HealthEvent(
            time=self.env.now, service=service,
            instance=inst.instance_id, kind=kind, detail=detail))
