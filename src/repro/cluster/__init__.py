"""Cluster substrate: machines, placement, balancing, autoscaling."""

from .autoscaler import AutoscalerEvent, UtilizationAutoscaler
from .depscaler import DependencyAwareAutoscaler
from .cluster import Cluster
from .faults import MachineOutage
from .loadbalancer import KeyHash, LeastOutstanding, LoadBalancer, RoundRobin
from .machine import NIC_10G_KB_PER_S, Machine, ServiceInstance
from .ratelimit import TokenBucket

__all__ = [
    "AutoscalerEvent",
    "Cluster",
    "DependencyAwareAutoscaler",
    "KeyHash",
    "LeastOutstanding",
    "LoadBalancer",
    "Machine",
    "MachineOutage",
    "NIC_10G_KB_PER_S",
    "RoundRobin",
    "ServiceInstance",
    "TokenBucket",
    "UtilizationAutoscaler",
]
