"""Cluster substrate: machines, placement, balancing, autoscaling,
health checking."""

from .autoscaler import UtilizationAutoscaler
from .depscaler import DependencyAwareAutoscaler
from .cluster import Cluster
from .faults import MachineOutage
from .health import HealthCheckConfig, HealthChecker, HealthEvent
from .loadbalancer import KeyHash, LeastOutstanding, LoadBalancer, RoundRobin
from .machine import NIC_10G_KB_PER_S, Machine, ServiceInstance
from .ratelimit import TokenBucket
from .scaling import AutoscalerEvent, ScalingBookkeeper

__all__ = [
    "AutoscalerEvent",
    "ScalingBookkeeper",
    "Cluster",
    "DependencyAwareAutoscaler",
    "HealthCheckConfig",
    "HealthChecker",
    "HealthEvent",
    "KeyHash",
    "LeastOutstanding",
    "LoadBalancer",
    "Machine",
    "MachineOutage",
    "NIC_10G_KB_PER_S",
    "RoundRobin",
    "ServiceInstance",
    "TokenBucket",
    "UtilizationAutoscaler",
]
