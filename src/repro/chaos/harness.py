"""The chaos experiment harness: scenario in, scorecard out.

``run_chaos_scenario`` builds a fresh deployment, arms the scenario's
fault schedule (validated first), optionally starts a health-checked
failover loop, drives open-loop load with the observability layer
attached, and grades the outcome into a
:class:`~repro.chaos.scorecard.Scorecard`.  ``run_chaos_suite`` runs a
list of scenarios, each in its own simulation universe with the same
seed — so runs differ only by their fault schedule, the
common-random-numbers discipline that makes scorecards comparable
across scenarios and the ``repro chaos`` CLI's tables meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

from ..arch.platform import XEON, Platform
from ..cluster.cluster import Cluster
from ..cluster.health import HealthCheckConfig, HealthChecker
from ..core.deployment import Deployment
from ..core.experiment import ExperimentResult, run_experiment
from ..services.app import Application
from .scenarios import ChaosScenario, scenario as lookup_scenario
from .schedule import ChaosLog, FaultSchedule
from .scorecard import Scorecard, SteadyStateHypothesis, build_scorecard

__all__ = ["ChaosRun", "run_chaos_scenario", "run_chaos_suite"]


@dataclass
class ChaosRun:
    """Everything one scenario run produced."""

    scenario: str
    scorecard: Scorecard
    result: ExperimentResult
    schedule: FaultSchedule
    log: ChaosLog
    health: Optional[HealthChecker] = None


def _resolve_app(app: Union[Application, str]) -> Application:
    if isinstance(app, Application):
        return app
    from ..apps.registry import build_app
    return build_app(app)


def _resolve_failover(failover) -> Optional[HealthCheckConfig]:
    if failover is True:
        return HealthCheckConfig()
    if failover is None or failover is False:
        return None
    return failover


def run_chaos_scenario(app: Union[Application, str],
                       scn: Union[ChaosScenario, str],
                       qps: float,
                       duration: float = 30.0,
                       platform: Platform = XEON,
                       n_machines: int = 6,
                       replicas: Optional[Dict[str, int]] = None,
                       cores: Optional[Dict[str, int]] = None,
                       seed: int = 0,
                       edge_machines: int = 0,
                       edge_platform: Optional[Platform] = None,
                       failover: Union[bool, HealthCheckConfig,
                                       None] = True,
                       policies: Optional[dict] = None,
                       default_policy=None,
                       hypothesis: Optional[SteadyStateHypothesis]
                       = None,
                       metrics: Union[bool, object] = True,
                       validate: bool = True) -> ChaosRun:
    """Run one scenario against a fresh deployment and grade it.

    ``failover=True`` runs a default :class:`HealthChecker`; pass a
    :class:`HealthCheckConfig` to tune detection/replacement, or
    ``False`` for the drain-only world where recovery waits for the
    fault script to revert."""
    from ..sim.engine import Environment

    application = _resolve_app(app)
    if isinstance(scn, str):
        scn = lookup_scenario(scn)
    env = Environment()
    cluster = Cluster.homogeneous(env, platform, n_machines)
    if edge_machines > 0:
        from ..arch.platform import DRONE_SOC
        edge = Cluster.homogeneous(env, edge_platform or DRONE_SOC,
                                   edge_machines, zone="edge",
                                   name_prefix="drone")
        cluster = cluster.merge(edge)
    deployment = Deployment(env, application, cluster,
                            replicas=replicas, cores=cores, seed=seed,
                            policies=policies,
                            default_policy=default_policy)
    schedule = scn.build(deployment, duration)
    log = schedule.arm(deployment, validate=validate)
    config = _resolve_failover(failover)
    health = None
    if config is not None:
        health = HealthChecker(deployment, config).start()
    if health is not None and metrics is True:
        from ..obs import MetricsRegistry, instrument_health
        metrics = MetricsRegistry()
        instrument_health(metrics, health)
    result = run_experiment(deployment, qps, duration, seed=seed + 1,
                            metrics=metrics)
    card = build_scorecard(
        result, log,
        health_events=health.events if health else (),
        scenario=scn.name, hypothesis=hypothesis, seed=seed)
    return ChaosRun(scenario=scn.name, scorecard=card, result=result,
                    schedule=schedule, log=log, health=health)


def run_chaos_suite(app: Union[Application, str],
                    scenarios: Sequence[Union[ChaosScenario, str]],
                    qps: float,
                    duration: float = 30.0,
                    **kwargs) -> List[ChaosRun]:
    """Run several scenarios, one isolated simulation each, same seed.

    Keyword arguments pass through to :func:`run_chaos_scenario`."""
    return [run_chaos_scenario(app, scn, qps, duration, **kwargs)
            for scn in scenarios]
