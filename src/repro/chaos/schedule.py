"""Fault schedules: composing injectors on a deterministic timeline.

A :class:`FaultSchedule` is an ordered set of :class:`~repro.chaos.
faults.Fault` objects, each carrying its own ``start``/``duration``.
Arming the schedule validates the composition (see
:mod:`repro.analysis_static.faultcheck`) and registers one simulation
process per fault, in deterministic ``(start, insertion index)`` order
— so two runs with the same seed and the same schedule are
byte-identical, and the only way to "race" two faults is to write the
race into the schedule, where the validator will flag it.

The schedule keeps a :class:`ChaosLog` of every inject/revert with its
sim timestamp; scorecards use it to anchor detection time and MTTR to
the actual injection instant rather than to the requested one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from .faults import ChaosContext, Fault

__all__ = ["FaultSchedule", "ChaosLog", "ChaosEvent"]


@dataclass
class ChaosEvent:
    """One transition on the chaos timeline."""

    time: float
    fault: str
    kind: str
    phase: str  # "inject" | "revert"


class ChaosLog:
    """What the schedule actually did, with sim timestamps."""

    def __init__(self):
        self.events: List[ChaosEvent] = []

    def record(self, time: float, fault: Fault, phase: str) -> None:
        self.events.append(
            ChaosEvent(time=time, fault=fault.name, kind=fault.kind,
                       phase=phase))

    def injected_at(self, fault_name: str) -> Optional[float]:
        """When the named fault was injected, or None."""
        for event in self.events:
            if event.fault == fault_name and event.phase == "inject":
                return event.time
        return None

    def reverted_at(self, fault_name: str) -> Optional[float]:
        """When the named fault was reverted, or None (still active)."""
        for event in self.events:
            if event.fault == fault_name and event.phase == "revert":
                return event.time
        return None

    def windows(self) -> List[Tuple[str, float, Optional[float]]]:
        """(fault, inject time, revert time or None) per injection."""
        out = []
        for event in self.events:
            if event.phase == "inject":
                out.append((event.fault, event.time,
                            self.reverted_at(event.fault)))
        return out

    def first_injection(self) -> Optional[float]:
        """Sim time of the earliest injection, or None (no faults)."""
        times = [e.time for e in self.events if e.phase == "inject"]
        return min(times) if times else None


class FaultSchedule:
    """An ordered composition of faults on the simulation clock."""

    def __init__(self, faults: Iterable[Fault] = ()):
        self.faults: List[Fault] = []
        for fault in faults:
            self.add(fault)
        self.log = ChaosLog()
        self._armed = False

    def add(self, fault: Fault) -> Fault:
        """Append a fault to the schedule (returns it, for chaining)."""
        if not isinstance(fault, Fault):
            raise TypeError(f"not a Fault: {fault!r}")
        self.faults.append(fault)
        return fault

    def validate(self, deployment) -> List:
        """Static findings for this schedule against a deployment
        (see :mod:`repro.analysis_static.faultcheck`)."""
        from ..analysis_static.faultcheck import validate_schedule
        return validate_schedule(self, deployment)

    def arm(self, deployment, validate: bool = True) -> ChaosLog:
        """Register one process per fault on the deployment's clock.

        With ``validate=True`` (the default) the schedule is checked
        first and arming fails on any error-severity finding — a bad
        schedule should die before the run burns simulated hours.
        """
        if self._armed:
            raise RuntimeError("schedule is already armed")
        if validate:
            from ..analysis_static.faultcheck import (
                FaultScheduleError, validate_schedule)
            findings = validate_schedule(self, deployment)
            errors = [f for f in findings if f.severity == "error"]
            if errors:
                raise FaultScheduleError(errors)
        self._armed = True
        ctx = ChaosContext(deployment)
        base = deployment.env.now
        order = sorted(range(len(self.faults)),
                       key=lambda i: (self.faults[i].start, i))
        for idx in order:
            fault = self.faults[idx]
            deployment.env.process(
                self._drive(ctx, fault, base),
                name=f"chaos:{fault.name}")
        return self.log

    def _drive(self, ctx: ChaosContext, fault: Fault, base: float):
        env = ctx.env
        yield env.timeout(base + fault.start - env.now)
        fault.inject(ctx)
        self.log.record(env.now, fault, "inject")
        if fault.duration is not None:
            yield env.timeout(fault.duration)
            fault.revert(ctx)
            self.log.record(env.now, fault, "revert")

    def horizon(self) -> Optional[float]:
        """Latest scheduled revert, or None if any fault is permanent
        (or the schedule is empty)."""
        if not self.faults:
            return None
        ends = [fault.end for fault in self.faults]
        if any(end is None for end in ends):
            return None
        return max(ends)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)
