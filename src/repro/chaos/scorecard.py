"""Resilience scorecards: what a chaos run proved, in four numbers.

A chaos experiment starts from a **steady-state hypothesis** — "under
this load, the p99 stays under the QoS target" — verifies it holds
before the first injection, then grades the system's response on:

* **detection time** — first injection until the health checker first
  confirmed a replica down (the control plane *noticing*);
* **MTTR** — first injection until the end of the last QoS-violation
  episode: when users stopped hurting, not when the fault script ended
  (censored when violations persist to the end of the run);
* **blast radius** — how far the failure spread, measured through the
  QoS-attribution engine: which tiers show real evidence (span
  inflation, exclusive time) inside the violation episodes, and for
  how long.  Reported both as the affected-tier set and as
  tier-seconds (tiers x time), the area of the damage;
* **goodput lost** — the fraction of expected within-QoS completions
  (at the pre-fault rate) that never materialized after injection.

The scorecard also names the **attributed** culprit tier from the
longest post-injection episode, so a scenario can assert not just
"something broke" but "the engine blamed the tier we actually broke".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..obs.qos import QoSReport, attribute_qos_violations
from ..stats.percentiles import percentile
from ..stats.tables import format_table

__all__ = ["SteadyStateHypothesis", "Scorecard", "build_scorecard"]


@dataclass
class SteadyStateHypothesis:
    """The QoS claim a chaos run is an attack on."""

    #: Tail-latency bound (seconds); None uses the app's QoS target.
    latency: Optional[float] = None
    p: float = 0.99
    #: Fewer post-warmup samples than this makes the check vacuous
    #: (reported as holding, with a note).
    min_samples: int = 10

    def target_for(self, result) -> float:
        if self.latency is not None:
            return self.latency
        return result.deployment.app.qos_latency

    def check(self, result, start: float, end: float) -> tuple:
        """(held, detail) over completions in ``[start, end)``."""
        target = self.target_for(result)
        samples = result.collector.end_to_end.samples(start=start,
                                                      end=end)
        if len(samples) < self.min_samples:
            return True, (f"only {len(samples)} samples in "
                          f"[{start:g}s, {end:g}s); vacuously holds")
        tail = percentile(samples, self.p)
        held = tail <= target
        return held, (f"p{self.p * 100:g}={tail * 1e3:.1f} ms vs "
                      f"target {target * 1e3:.1f} ms over "
                      f"[{start:g}s, {end:g}s)")


@dataclass
class Scorecard:
    """The graded outcome of one chaos scenario run."""

    scenario: str
    app: str
    seed: int
    fault_count: int
    #: Did the steady-state hypothesis hold before the first injection
    #: (for a fault-free run: over the whole post-warmup window)?
    steady_state_ok: bool
    steady_state_detail: str
    first_injection: Optional[float] = None
    detection_time: Optional[float] = None
    mttr: Optional[float] = None
    mttr_censored: bool = False
    episodes: int = 0
    blast_tiers: List[str] = field(default_factory=list)
    #: Tier-seconds of attributed damage (tiers x violation time).
    blast_radius: float = 0.0
    goodput_lost: float = 0.0
    attributed: Optional[str] = None
    #: Front-door rejections during the run (criticality-aware when
    #: the degradation layer is armed).
    shed_requests: int = 0
    #: Successful completions that carried >= 1 degradation event.
    degraded_responses: int = 0
    #: Successful completions at full fidelity under an armed
    #: degradation layer (zero when the layer is off).
    full_fidelity_responses: int = 0
    #: Criticality class -> fraction of expected post-injection
    #: completions that never materialized (empty without degradation).
    goodput_lost_by_class: Dict[str, float] = field(default_factory=dict)
    #: Criticality class -> utility-seconds lost post-injection: the
    #: missing fidelity-weighted completions divided by the healthy
    #: pre-fault utility rate, i.e. seconds of full-rate service
    #: effectively destroyed for that class.
    utility_seconds_lost: Dict[str, float] = field(default_factory=dict)
    #: The full attribution report backing the summary numbers.
    qos_report: Optional[QoSReport] = None

    def to_dict(self) -> dict:
        """JSON-serializable summary (the CI artifact rows)."""
        return {
            "scenario": self.scenario,
            "app": self.app,
            "seed": self.seed,
            "fault_count": self.fault_count,
            "steady_state_ok": self.steady_state_ok,
            "steady_state_detail": self.steady_state_detail,
            "first_injection": self.first_injection,
            "detection_time": self.detection_time,
            "mttr": self.mttr,
            "mttr_censored": self.mttr_censored,
            "episodes": self.episodes,
            "blast_tiers": list(self.blast_tiers),
            "blast_radius_tier_seconds": self.blast_radius,
            "goodput_lost": self.goodput_lost,
            "attributed": self.attributed,
            "shed_requests": self.shed_requests,
            "degraded_responses": self.degraded_responses,
            "full_fidelity_responses": self.full_fidelity_responses,
            "goodput_lost_by_class": dict(self.goodput_lost_by_class),
            "utility_seconds_lost": dict(self.utility_seconds_lost),
        }

    def render(self) -> str:
        """One human-readable scorecard block."""
        def fmt_s(value: Optional[float]) -> str:
            return "-" if value is None else f"{value:.2f}s"

        mttr = fmt_s(self.mttr)
        if self.mttr is not None and self.mttr_censored:
            mttr = f">={self.mttr:.2f}s (censored)"
        rows = [
            ["steady state", "held" if self.steady_state_ok
             else "VIOLATED"],
            ["faults injected", str(self.fault_count)],
            ["detection time", fmt_s(self.detection_time)],
            ["MTTR", mttr],
            ["violation episodes", str(self.episodes)],
            ["blast radius", f"{self.blast_radius:.1f} tier-seconds "
             f"({', '.join(self.blast_tiers) or 'none'})"],
            ["goodput lost", f"{self.goodput_lost * 100:.1f}%"],
            ["attributed culprit", self.attributed or "-"],
            ["shed requests", str(self.shed_requests)],
        ]
        if self.degraded_responses or self.full_fidelity_responses:
            rows.append(["degraded / full fidelity",
                         f"{self.degraded_responses} / "
                         f"{self.full_fidelity_responses}"])
        for crit in sorted(self.utility_seconds_lost):
            lost = self.utility_seconds_lost[crit]
            goodput = self.goodput_lost_by_class.get(crit)
            detail = f"{lost:.1f} utility-seconds"
            if goodput is not None:
                detail += f" ({goodput * 100:.1f}% goodput lost)"
            rows.append([f"degradation [{crit}]", detail])
        return format_table(
            ["metric", "value"], rows,
            title=f"resilience scorecard: {self.scenario} on {self.app}")


def _goodput_lost(result, target: float, first_inject: float) -> float:
    """Fraction of expected within-QoS completions missing after the
    first injection, at the pre-fault good rate."""
    recorder = result.collector.end_to_end
    pre_len = first_inject - result.warmup
    post_len = result.duration - first_inject
    if pre_len <= 0 or post_len <= 0:
        return 0.0
    pre = recorder.samples(start=result.warmup, end=first_inject)
    good_rate = sum(1 for s in pre if s <= target) / pre_len
    if good_rate <= 0:
        return 0.0
    post = recorder.samples(start=first_inject, end=result.duration)
    actual_good = sum(1 for s in post if s <= target)
    expected_good = good_rate * post_len
    return min(1.0, max(0.0, 1.0 - actual_good / expected_good))


def _per_class_losses(result, first_inject: float) -> tuple:
    """(goodput_lost_by_class, utility_seconds_lost) post-injection.

    Both compare the post-injection window against the pre-fault rate,
    per criticality class.  Utility-seconds divide the missing
    fidelity-weighted completions by the healthy utility rate, so the
    number reads as "seconds of full-rate service destroyed" and is
    comparable across classes with different traffic shares."""
    collector = result.collector
    pre_len = first_inject - result.warmup
    post_len = result.duration - first_inject
    if pre_len <= 0 or post_len <= 0 or not collector.utility_log:
        return {}, {}
    pre_ok = collector.ok_by_class(start=result.warmup, end=first_inject)
    post_ok = collector.ok_by_class(start=first_inject,
                                    end=result.duration)
    pre_util = collector.utility_by_class(start=result.warmup,
                                          end=first_inject)
    post_util = collector.utility_by_class(start=first_inject,
                                           end=result.duration)
    goodput_lost: Dict[str, float] = {}
    utility_lost: Dict[str, float] = {}
    for crit in sorted(set(pre_ok) | set(post_ok)):
        ok_rate = pre_ok.get(crit, 0) / pre_len
        if ok_rate > 0:
            expected = ok_rate * post_len
            goodput_lost[crit] = min(1.0, max(
                0.0, 1.0 - post_ok.get(crit, 0) / expected))
        util_rate = pre_util.get(crit, 0.0) / pre_len
        if util_rate > 0:
            expected_util = util_rate * post_len
            missing = max(0.0, expected_util
                          - post_util.get(crit, 0.0))
            utility_lost[crit] = missing / util_rate
    return goodput_lost, utility_lost


def build_scorecard(result, chaos_log, health_events: Sequence = (),
                    scenario: str = "scenario",
                    hypothesis: Optional[SteadyStateHypothesis] = None,
                    seed: int = 0,
                    window: Optional[float] = None,
                    blast_inflation: float = 2.0,
                    blast_exclusive_share: float = 0.3) -> Scorecard:
    """Grade one chaos run into a :class:`Scorecard`.

    A tier is inside the blast radius of an episode when the
    attribution engine holds real evidence against it: span p95
    inflated at least ``blast_inflation``x over its pre-episode
    baseline, or at least ``blast_exclusive_share`` of the episode's
    summed exclusive span time."""
    hypothesis = hypothesis or SteadyStateHypothesis()
    target = hypothesis.target_for(result)
    report = attribute_qos_violations(result, target=target,
                                      p=hypothesis.p, window=window)
    first_inject = chaos_log.first_injection()
    card = Scorecard(
        scenario=scenario,
        app=result.deployment.app.name,
        seed=seed,
        fault_count=sum(1 for e in chaos_log.events
                        if e.phase == "inject"),
        steady_state_ok=True, steady_state_detail="",
        first_injection=first_inject,
        qos_report=report,
    )
    collector = result.collector
    card.shed_requests = collector.status_counts.get("shed", 0)
    card.degraded_responses = collector.degraded_count
    card.full_fidelity_responses = collector.full_fidelity_count

    steady_end = first_inject if first_inject is not None \
        else result.duration
    held, detail = hypothesis.check(result, result.warmup, steady_end)
    card.steady_state_ok = held
    card.steady_state_detail = detail

    if first_inject is None:
        card.episodes = len(report.episodes)
        return card

    episodes = [ep for ep in report.episodes if ep.end > first_inject]
    card.episodes = len(episodes)

    for event in health_events:
        if event.kind == "detected" and event.time >= first_inject:
            card.detection_time = event.time - first_inject
            break

    if episodes:
        last_end = max(ep.end for ep in episodes)
        card.mttr = last_end - first_inject
        card.mttr_censored = last_end >= result.duration - 1e-9
    else:
        card.mttr = 0.0

    blast_tiers = set()
    blast_area = 0.0
    for ep in episodes:
        length = ep.end - max(ep.start, first_inject)
        for ev in ep.evidence:
            inflated = (ev.inflation is not None
                        and ev.inflation >= blast_inflation)
            holding = ev.exclusive_share >= blast_exclusive_share
            if inflated or holding:
                blast_tiers.add(ev.service)
                blast_area += length
    card.blast_tiers = sorted(blast_tiers)
    card.blast_radius = blast_area

    if episodes:
        longest = max(episodes, key=lambda e: e.end - e.start)
        top = longest.top_culprit
        card.attributed = top.service if top else None

    card.goodput_lost = _goodput_lost(result, target, first_inject)
    card.goodput_lost_by_class, card.utility_seconds_lost = \
        _per_class_losses(result, first_inject)
    return card
