"""The fault taxonomy: composable, seedable failure injectors.

Every injector implements one tiny interface — :class:`Fault` — with an
``inject``/``revert`` pair operating through a :class:`ChaosContext`
(the deployment plus its cluster, fabric and RNG).  Faults carry their
own timeline (``start``, optional ``duration``) so a
:class:`~repro.chaos.schedule.FaultSchedule` can compose them on the
simulation clock, validate the composition up front, and replay it
byte-identically from a seed.

The taxonomy mirrors the failure modes the paper's Sec. 6-7 experiments
probe and the ones production postmortems name most often:

=====================  ==================================================
injector               what it models
=====================  ==================================================
:class:`MachineCrash`  a server dies and later restarts; replicated
                       tiers drain, singletons freeze at a crawl, and
                       restarted cache tiers come back *cold* and
                       re-warm along the hit-ratio model
:class:`ZoneOutage`    correlated crash of every machine in a placement
                       zone (the classic AZ failure)
:class:`CorrelatedCrash`  the same, for an explicit machine set
:class:`NetworkPartition` a zone pair stops delivering; messages queue
                       and flush on heal
:class:`LinkDegradation`  packet loss (paid as RTO retransmits) and/or
                       added latency on a zone link
:class:`DatastoreSlowdown` a backing store browns out: per-request work
                       inflates, optionally plus a pure-latency stall
:class:`GrayFailure`   one replica silently runs slow while still
                       answering health probes that only check liveness
=====================  ==================================================

All randomness any injector needs is drawn from the deployment's named
RNG streams, and only while a fault is active — a schedule with no
faults perturbs nothing, so healthy runs stay byte-identical to runs
without a chaos layer at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from ..cluster.cluster import Cluster
from ..cluster.faults import CrashRecord, crash_machine, restore_machine
from ..cluster.machine import Machine, ServiceInstance

__all__ = ["ChaosContext", "Fault", "FaultTargets", "MachineCrash",
           "CorrelatedCrash", "ZoneOutage", "NetworkPartition",
           "LinkDegradation", "DatastoreSlowdown", "GrayFailure"]

MachineSpec = Union[Machine, int, str]


class ChaosContext:
    """Everything an injector may touch, resolved from one deployment."""

    def __init__(self, deployment):
        self.deployment = deployment
        self.env = deployment.env
        self.cluster: Cluster = deployment.cluster
        self.fabric = deployment.fabric
        self.rng = deployment.rng


@dataclass
class FaultTargets:
    """What one fault touches — the vocabulary of schedule validation."""

    services: List[str] = field(default_factory=list)
    machines: List[str] = field(default_factory=list)
    zones: List[str] = field(default_factory=list)
    #: Region names a region-scale fault touches (``RegionOutage``,
    #: ``InterRegionPartition``); validated by FAULT004.
    regions: List[str] = field(default_factory=list)


def _resolve_machine(ctx: ChaosContext, spec: MachineSpec) -> Machine:
    """A machine by object, index, or id (raises ValueError if unknown)."""
    machines = ctx.cluster.machines
    if isinstance(spec, Machine):
        if spec not in machines:
            raise ValueError(
                f"machine {spec.machine_id} is not in this cluster")
        return spec
    if isinstance(spec, int):
        if not 0 <= spec < len(machines):
            raise ValueError(f"machine index {spec} out of range "
                             f"(cluster has {len(machines)})")
        return machines[spec]
    for machine in machines:
        if machine.machine_id == spec:
            return machine
    raise ValueError(f"unknown machine {spec!r}")


class Fault:
    """One injectable failure with its place on the schedule timeline.

    ``start`` is seconds after the schedule is armed; ``duration`` is
    how long the fault holds before it reverts (``None`` = never —
    the fault persists to the end of the run).  Subclasses implement
    ``_inject``/``_revert`` and ``targets``; the base class guards the
    state machine so double-injection is an error, not silent
    corruption.
    """

    kind = "fault"

    def __init__(self, start: float = 0.0,
                 duration: Optional[float] = None,
                 name: Optional[str] = None):
        if start < 0:
            raise ValueError("fault start must be >= 0")
        if duration is not None and duration <= 0:
            raise ValueError("fault duration must be > 0 (or None)")
        self.start = start
        self.duration = duration
        self.name = name or self.kind
        self.active = False

    @property
    def end(self) -> Optional[float]:
        """When the fault reverts on the schedule clock, or None."""
        if self.duration is None:
            return None
        return self.start + self.duration

    def targets(self, ctx: ChaosContext) -> FaultTargets:
        """What this fault touches (for validation and scorecards)."""
        return FaultTargets()

    def inject(self, ctx: ChaosContext) -> None:
        """Apply the fault (idempotence is an error by design)."""
        if self.active:
            raise RuntimeError(f"fault {self.name!r} is already active")
        self._inject(ctx)
        self.active = True

    def revert(self, ctx: ChaosContext) -> None:
        """Undo the fault, restoring pre-injection state."""
        if not self.active:
            raise RuntimeError(f"fault {self.name!r} is not active")
        self._revert(ctx)
        self.active = False

    def _inject(self, ctx: ChaosContext) -> None:
        raise NotImplementedError

    def _revert(self, ctx: ChaosContext) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        window = "forever" if self.duration is None \
            else f"{self.duration:g}s"
        return f"<{type(self).__name__} {self.name} @{self.start:g}s {window}>"


class MachineCrash(Fault):
    """One machine crashes, then (if ``duration`` is set) restarts.

    Replicated tiers lose the replicas on this machine (drained from
    their balancers); a tier whose *only* replica lives here freezes at
    a crawl instead — the singleton-outage regime where a microservice
    graph's blast radius dwarfs a monolith's.

    On restart, any cache tier hosted on the machine comes back *cold*:
    its hit ratio drops toward ``cache_cold_ratio`` (scaled by how much
    of the tier this machine hosted) and ramps back to the configured
    warm ratio over ``cache_warmup`` seconds — the miss-storm a cache
    restart sends into the backing store.
    """

    kind = "machine_crash"

    def __init__(self, machine: MachineSpec, start: float = 0.0,
                 duration: Optional[float] = None,
                 cold_cache: bool = True,
                 cache_cold_ratio: float = 0.0,
                 cache_warmup: float = 5.0,
                 warmup_steps: int = 8,
                 name: Optional[str] = None):
        if not 0.0 <= cache_cold_ratio <= 1.0:
            raise ValueError("cache_cold_ratio must be in [0, 1]")
        if cache_warmup <= 0:
            raise ValueError("cache_warmup must be > 0")
        self.machine_spec = machine
        self.cold_cache = cold_cache
        self.cache_cold_ratio = cache_cold_ratio
        self.cache_warmup = cache_warmup
        self.warmup_steps = max(1, warmup_steps)
        #: The undo record while active (exposed for the legacy
        #: :class:`~repro.cluster.faults.MachineOutage` shim).
        self.record: Optional[CrashRecord] = None
        label = machine.machine_id if isinstance(machine, Machine) \
            else str(machine)
        super().__init__(start, duration,
                         name or f"{self.kind}:{label}")

    def targets(self, ctx: ChaosContext) -> FaultTargets:
        machine = _resolve_machine(ctx, self.machine_spec)
        services = sorted({inst.definition.name
                           for inst in machine.instances})
        return FaultTargets(services=services,
                            machines=[machine.machine_id],
                            zones=[machine.zone])

    def _inject(self, ctx: ChaosContext) -> None:
        machine = _resolve_machine(ctx, self.machine_spec)
        self.record = crash_machine(ctx.deployment, machine)

    def _revert(self, ctx: ChaosContext) -> None:
        record = self.record
        machine = record.machine
        restore_machine(ctx.deployment, record)
        self.record = None
        if self.cold_cache:
            self._chill_caches(ctx, machine)

    # -- cold-restart cache model --------------------------------------
    def _chill_caches(self, ctx: ChaosContext, machine: Machine) -> None:
        deployment = ctx.deployment
        for service in sorted({inst.definition.name
                               for inst in machine.instances}):
            model = deployment.cache_model_of(service)
            if model is None:
                continue
            warm_ratio, penalty = model
            total = len(deployment.instances_of(service))
            local = sum(1 for inst in machine.instances
                        if inst.definition.name == service)
            share = local / max(total, 1)
            cold = warm_ratio - (warm_ratio - self.cache_cold_ratio) * share
            if cold >= warm_ratio:
                continue
            deployment.set_cache_hit_ratio(service, max(cold, 0.0),
                                           penalty)
            ctx.env.process(
                self._warmup(ctx, service, cold, warm_ratio, penalty),
                name=f"cache-warmup:{service}")

    def _warmup(self, ctx: ChaosContext, service: str, cold: float,
                warm: float, penalty: float):
        """Ramp the hit ratio back up in deterministic steps."""
        steps = self.warmup_steps
        for k in range(1, steps + 1):
            yield ctx.env.timeout(self.cache_warmup / steps)
            ratio = cold + (warm - cold) * (k / steps)
            ctx.deployment.set_cache_hit_ratio(service, min(ratio, warm),
                                               penalty)


class CorrelatedCrash(Fault):
    """Several machines crash together (shared rack/PDU/hypervisor).

    This is the shared group-crash machinery: :class:`ZoneOutage` is a
    thin shim resolving members from a placement zone, and
    :class:`~repro.region.RegionOutage` resolves them from one region's
    cluster.  Beyond reverting each member crash, the group repair
    restores every surviving replica's *per-replica* speed factor to
    its pre-outage value and re-bakes the cached CPU rate of every
    instance currently hosted on a member machine — replicas
    provisioned mid-outage (health-checker replacements placed against
    frozen/slowed machine state) come out of repair at full speed
    instead of inheriting outage-era rates.
    """

    kind = "correlated_crash"

    def __init__(self, machines: Sequence[MachineSpec],
                 start: float = 0.0, duration: Optional[float] = None,
                 cold_cache: bool = True,
                 cache_cold_ratio: float = 0.0,
                 cache_warmup: float = 5.0,
                 name: Optional[str] = None):
        if not machines:
            raise ValueError("correlated crash needs at least one machine")
        self._crash_kwargs = dict(cold_cache=cold_cache,
                                  cache_cold_ratio=cache_cold_ratio,
                                  cache_warmup=cache_warmup)
        self.machine_specs = list(machines)
        self._crashes: List[MachineCrash] = []
        self._speed_factors: List[tuple] = []
        super().__init__(start, duration, name or self.kind)

    def _members(self, ctx: ChaosContext) -> List[Machine]:
        return [_resolve_machine(ctx, spec)
                for spec in self.machine_specs]

    def targets(self, ctx: ChaosContext) -> FaultTargets:
        machines = self._members(ctx)
        services = sorted({inst.definition.name
                           for machine in machines
                           for inst in machine.instances})
        return FaultTargets(
            services=services,
            machines=[m.machine_id for m in machines],
            zones=sorted({m.zone for m in machines}))

    def _inject(self, ctx: ChaosContext) -> None:
        members = self._members(ctx)
        # Snapshot per-replica speed factors before any member crashes:
        # the group repair restores them for replicas that survive the
        # outage (mirroring the guarded restore MachineCrash does for
        # machine-level slow factors).
        self._speed_factors = [
            (inst, inst.definition.name, inst.speed_factor)
            for machine in members for inst in machine.instances]
        self._crashes = [
            MachineCrash(machine, **self._crash_kwargs)
            for machine in members
        ]
        for crash in self._crashes:
            crash.inject(ctx)

    def _revert(self, ctx: ChaosContext) -> None:
        members = [crash.record.machine for crash in self._crashes]
        for crash in self._crashes:
            crash.revert(ctx)
        self._crashes = []
        # A replica may have been retired mid-outage (health-checker
        # replacement); restoring a detached instance is moot — the
        # same guard GrayFailure's revert applies.
        for inst, service, factor in self._speed_factors:
            if inst in ctx.deployment.instances_of(service):
                inst.set_speed_factor(factor)
        self._speed_factors = []
        # Replacements provisioned mid-outage baked their CPU rate
        # against in-outage machine state (a frozen machine's crawl
        # factor); with the machines restored, re-derive every hosted
        # instance's effective rate.
        for machine in members:
            for inst in machine.instances:
                inst.refresh_rate()


class ZoneOutage(CorrelatedCrash):
    """Every machine in one placement zone goes down together.

    A thin shim over the :class:`CorrelatedCrash` group-crash
    machinery — the same machinery :class:`~repro.region.RegionOutage`
    generalizes to a whole region's cluster — so repair semantics
    (per-replica speed-factor restore, rate re-bake for mid-outage
    replacements, cold caches) are defined once."""

    kind = "zone_outage"

    def __init__(self, zone: str, start: float = 0.0,
                 duration: Optional[float] = None,
                 cold_cache: bool = True,
                 cache_cold_ratio: float = 0.0,
                 cache_warmup: float = 5.0,
                 name: Optional[str] = None):
        self.zone = zone
        # The member list resolves lazily against the cluster.
        super().__init__(machines=["<zone>"], start=start,
                         duration=duration, cold_cache=cold_cache,
                         cache_cold_ratio=cache_cold_ratio,
                         cache_warmup=cache_warmup,
                         name=name or f"{self.kind}:{zone}")

    def _members(self, ctx: ChaosContext) -> List[Machine]:
        machines = ctx.cluster.zone(self.zone)
        if not machines:
            raise ValueError(f"no machines in zone {self.zone!r}")
        return machines


class NetworkPartition(Fault):
    """A zone pair stops delivering until the fault reverts.

    Messages queue on the cut and flush on heal — the classic
    partition-heal burst.  What the silence *means* is decided by the
    resilience layer above (timeouts, breakers), not the fabric.
    """

    kind = "partition"

    def __init__(self, zone_a: str, zone_b: str, start: float = 0.0,
                 duration: Optional[float] = None,
                 bidirectional: bool = True,
                 name: Optional[str] = None):
        self.zone_a = zone_a
        self.zone_b = zone_b
        self.bidirectional = bidirectional
        super().__init__(start, duration,
                         name or f"{self.kind}:{zone_a}|{zone_b}")

    def targets(self, ctx: ChaosContext) -> FaultTargets:
        return FaultTargets(zones=sorted({self.zone_a, self.zone_b}))

    def _inject(self, ctx: ChaosContext) -> None:
        ctx.fabric.partition(self.zone_a, self.zone_b,
                             bidirectional=self.bidirectional)

    def _revert(self, ctx: ChaosContext) -> None:
        ctx.fabric.heal(self.zone_a, self.zone_b,
                        bidirectional=self.bidirectional)


class LinkDegradation(Fault):
    """Packet loss and/or added latency on one zone link.

    Loss is paid as TCP retransmission timeouts (``rto`` per lost
    transmission, geometric in ``loss_rate``), drawn from the fabric's
    seeded RNG only while the fault is active.
    """

    kind = "link_degradation"

    def __init__(self, zone_a: str, zone_b: str,
                 extra_latency: float = 0.0, loss_rate: float = 0.0,
                 rto: float = 0.2, start: float = 0.0,
                 duration: Optional[float] = None,
                 bidirectional: bool = True,
                 name: Optional[str] = None):
        if extra_latency < 0:
            raise ValueError("extra_latency must be >= 0")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if extra_latency == 0.0 and loss_rate == 0.0:
            raise ValueError(
                "link degradation needs extra_latency or loss_rate")
        self.zone_a = zone_a
        self.zone_b = zone_b
        self.extra_latency = extra_latency
        self.loss_rate = loss_rate
        self.rto = rto
        self.bidirectional = bidirectional
        super().__init__(start, duration,
                         name or f"{self.kind}:{zone_a}|{zone_b}")

    def targets(self, ctx: ChaosContext) -> FaultTargets:
        return FaultTargets(zones=sorted({self.zone_a, self.zone_b}))

    def _inject(self, ctx: ChaosContext) -> None:
        ctx.fabric.degrade_link(self.zone_a, self.zone_b,
                                extra_latency=self.extra_latency,
                                loss_rate=self.loss_rate, rto=self.rto,
                                bidirectional=self.bidirectional)

    def _revert(self, ctx: ChaosContext) -> None:
        ctx.fabric.heal(self.zone_a, self.zone_b,
                        bidirectional=self.bidirectional)


class DatastoreSlowdown(Fault):
    """A backing store browns out: per-request work inflates by
    ``factor`` (composing with any existing multiplier), optionally
    plus a pure-latency ``extra_delay`` stall per request (a sick disk
    that waits without burning CPU — Fig. 17's case B)."""

    kind = "datastore_slowdown"

    def __init__(self, service: str, factor: float = 4.0,
                 extra_delay: float = 0.0, start: float = 0.0,
                 duration: Optional[float] = None,
                 name: Optional[str] = None):
        if factor < 1.0:
            raise ValueError("slowdown factor must be >= 1")
        if extra_delay < 0:
            raise ValueError("extra_delay must be >= 0")
        self.service = service
        self.factor = factor
        self.extra_delay = extra_delay
        self._prior_multiplier: Optional[float] = None
        self._prior_delay: Optional[float] = None
        super().__init__(start, duration,
                         name or f"{self.kind}:{service}")

    def targets(self, ctx: ChaosContext) -> FaultTargets:
        return FaultTargets(services=[self.service])

    def _inject(self, ctx: ChaosContext) -> None:
        deployment = ctx.deployment
        if self.service not in deployment.app.services:
            raise ValueError(f"unknown service {self.service!r}")
        self._prior_multiplier = deployment.work_multiplier[self.service]
        self._prior_delay = deployment.extra_delay[self.service]
        deployment.slow_down_service(
            self.service, self._prior_multiplier * self.factor)
        if self.extra_delay > 0:
            deployment.delay_service(
                self.service, self._prior_delay + self.extra_delay)

    def _revert(self, ctx: ChaosContext) -> None:
        deployment = ctx.deployment
        deployment.slow_down_service(self.service, self._prior_multiplier)
        deployment.delay_service(self.service, self._prior_delay)
        self._prior_multiplier = None
        self._prior_delay = None


class GrayFailure(Fault):
    """One replica silently runs at ``speed_factor`` of its healthy
    speed — no crash, no error, just slow answers from one of N.

    This is the failure mode that separates liveness probes from
    latency-aware ones: a liveness check sees a responsive replica and
    keeps it in rotation, while every 1/N-th request eats the slow
    path.
    """

    kind = "gray_failure"

    def __init__(self, service: str, replica: int = 0,
                 speed_factor: float = 0.25, start: float = 0.0,
                 duration: Optional[float] = None,
                 name: Optional[str] = None):
        if not 0.0 < speed_factor < 1.0:
            raise ValueError("speed_factor must be in (0, 1)")
        if replica < 0:
            raise ValueError("replica must be >= 0")
        self.service = service
        self.replica = replica
        self.speed_factor = speed_factor
        self._inst: Optional[ServiceInstance] = None
        self._prior: Optional[float] = None
        super().__init__(start, duration,
                         name or f"{self.kind}:{service}#{replica}")

    def targets(self, ctx: ChaosContext) -> FaultTargets:
        return FaultTargets(services=[self.service])

    def _inject(self, ctx: ChaosContext) -> None:
        instances = ctx.deployment.instances_of(self.service)
        if self.replica >= len(instances):
            raise ValueError(
                f"{self.service!r} has {len(instances)} replicas, "
                f"no #{self.replica}")
        inst = instances[self.replica]
        self._inst = inst
        self._prior = inst.speed_factor
        inst.set_speed_factor(self._prior * self.speed_factor)

    def _revert(self, ctx: ChaosContext) -> None:
        inst = self._inst
        # The replica may have been retired mid-fault (failover); a
        # detached instance no longer routes, so restoring is moot.
        if inst is not None and inst in ctx.deployment.instances_of(
                self.service):
            inst.set_speed_factor(self._prior)
        self._inst = None
        self._prior = None
