"""The scenario library: named, reusable chaos compositions.

A :class:`ChaosScenario` is a *recipe* — a builder that, given a live
deployment and the run duration, returns a concrete
:class:`~repro.chaos.schedule.FaultSchedule`.  Recipes resolve their
targets from the deployment deterministically (sorted names, replica
zero, lowest machine index), so the same scenario on the same app with
the same seed is the same schedule, byte for byte.

The built-in suite covers the taxonomy end to end:

``baseline``        no faults — verifies the steady-state hypothesis
``machine_crash``   the machine hosting a backing store dies mid-run
``store_brownout``  a datastore's per-request work inflates 5x
``gray_replica``    one replica of the widest tier silently runs slow
``net_degrade``     packet loss + added latency inside the cluster
``partition``       a zone pair is cut (falls back to heavy loss when
                    the cluster has a single zone)
``zone_outage``     a whole zone (or a correlated machine group) dies

Fractions of the run, not absolute seconds, position every fault, so
the same scenario scales from a 10 s smoke run to a 10 min study.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Callable, Dict, List

from ..services.definition import ServiceKind
from .faults import (CorrelatedCrash, DatastoreSlowdown, GrayFailure,
                     LinkDegradation, MachineCrash, NetworkPartition,
                     ZoneOutage)
from .schedule import FaultSchedule

__all__ = ["ChaosScenario", "SCENARIOS", "register_scenario",
           "scenario", "scenario_names", "DEFAULT_SUITE"]

#: Service kinds that count as backing stores for victim selection.
_STORE_KINDS = (ServiceKind.DATABASE, ServiceKind.CACHE,
                ServiceKind.QUEUE)


@dataclass
class ChaosScenario:
    """A named recipe producing a fault schedule for any deployment."""

    name: str
    description: str
    builder: Callable[..., FaultSchedule]

    def build(self, deployment, duration: float) -> FaultSchedule:
        """The concrete schedule for this deployment and run length."""
        if duration <= 0:
            raise ValueError("duration must be > 0")
        return self.builder(deployment, duration)


SCENARIOS: Dict[str, ChaosScenario] = {}


def register_scenario(scn: ChaosScenario) -> ChaosScenario:
    """Add a scenario to the registry (name collisions are bugs)."""
    if scn.name in SCENARIOS:
        raise ValueError(f"scenario {scn.name!r} already registered")
    SCENARIOS[scn.name] = scn
    return scn


def scenario(name: str) -> ChaosScenario:
    """Look up a scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise ValueError(
            f"unknown scenario {name!r} (known: {known})") from None


def scenario_names() -> List[str]:
    """Registered scenario names, sorted."""
    return sorted(SCENARIOS)


# -- deterministic victim selection -----------------------------------
def _victim_store(deployment) -> str:
    """The backing store to attack: fewest replicas, then sorted name;
    falls back to the last service in sorted order (never the entry)."""
    app = deployment.app
    stores = sorted(
        (name for name, svc in sorted(app.services.items())
         if svc.kind in _STORE_KINDS),
        key=lambda name: (len(deployment.instances_of(name)), name))
    if stores:
        return stores[0]
    names = sorted(app.services)
    non_entry = [n for n in names if n != app.entry_service]
    return (non_entry or names)[-1]


def _widest_tier(deployment) -> str:
    """The service with the most replicas (sorted name breaks ties)."""
    return min(sorted(deployment.service_names()),
               key=lambda name: -len(deployment.instances_of(name)))


def _zones(deployment) -> List[str]:
    return sorted({m.zone for m in deployment.cluster.machines})


# -- builders ---------------------------------------------------------
def _baseline(deployment, duration: float) -> FaultSchedule:
    return FaultSchedule()


def _machine_crash(deployment, duration: float) -> FaultSchedule:
    victim = _victim_store(deployment)
    machine = deployment.instances_of(victim)[0].machine
    return FaultSchedule([
        MachineCrash(machine, start=0.35 * duration,
                     duration=0.40 * duration),
    ])


def _store_brownout(deployment, duration: float) -> FaultSchedule:
    victim = _victim_store(deployment)
    return FaultSchedule([
        DatastoreSlowdown(victim, factor=5.0, start=0.35 * duration,
                          duration=0.30 * duration),
    ])


def _gray_replica(deployment, duration: float) -> FaultSchedule:
    service = _widest_tier(deployment)
    return FaultSchedule([
        GrayFailure(service, replica=0, speed_factor=0.25,
                    start=0.30 * duration, duration=0.35 * duration),
    ])


def _net_degrade(deployment, duration: float) -> FaultSchedule:
    zone = _zones(deployment)[0]
    return FaultSchedule([
        LinkDegradation(zone, zone, extra_latency=1e-3,
                        loss_rate=0.02, rto=0.05,
                        start=0.35 * duration,
                        duration=0.30 * duration),
    ])


def _partition(deployment, duration: float) -> FaultSchedule:
    zones = _zones(deployment)
    if len(zones) >= 2:
        fault = NetworkPartition(zones[0], zones[1],
                                 start=0.40 * duration,
                                 duration=0.20 * duration)
    else:
        # Single-zone cluster: a partition would sever the app from
        # itself entirely; model a near-partition as heavy loss.
        fault = LinkDegradation(zones[0], zones[0], loss_rate=0.35,
                                rto=0.1, start=0.40 * duration,
                                duration=0.20 * duration,
                                name="partition:heavy-loss")
    return FaultSchedule([fault])


def _zone_outage(deployment, duration: float) -> FaultSchedule:
    zones = _zones(deployment)
    if len(zones) >= 2:
        # Take out a non-primary zone (the last in sorted order hosts
        # the overflow/edge side in the built-in topologies).
        fault = ZoneOutage(zones[-1], start=0.35 * duration,
                           duration=0.35 * duration)
    else:
        machines = deployment.cluster.machines
        group = machines[-max(1, ceil(len(machines) / 3)):]
        fault = CorrelatedCrash(group, start=0.35 * duration,
                                duration=0.35 * duration,
                                name="zone_outage:correlated")
    return FaultSchedule([fault])


register_scenario(ChaosScenario(
    "baseline", "no faults: verify the steady-state hypothesis",
    _baseline))
register_scenario(ChaosScenario(
    "machine_crash",
    "the machine hosting a backing store dies mid-run, then restarts",
    _machine_crash))
register_scenario(ChaosScenario(
    "store_brownout",
    "a datastore browns out: per-request work inflates 5x",
    _store_brownout))
register_scenario(ChaosScenario(
    "gray_replica",
    "one replica of the widest tier silently runs at quarter speed",
    _gray_replica))
register_scenario(ChaosScenario(
    "net_degrade",
    "intra-cluster packet loss and added latency",
    _net_degrade))
register_scenario(ChaosScenario(
    "partition",
    "a zone pair is cut (heavy loss when single-zone)",
    _partition))
register_scenario(ChaosScenario(
    "zone_outage",
    "a whole zone (or correlated machine group) goes down together",
    _zone_outage))

#: The order the CLI and CI smoke suite run by default.
DEFAULT_SUITE = ["baseline", "machine_crash", "store_brownout",
                 "gray_replica", "net_degrade", "partition",
                 "zone_outage"]
