"""Chaos engineering for the simulator: deterministic fault schedules,
health-check-driven failover, and resilience scorecards.

The layer has four pieces that compose bottom-up:

* :mod:`.faults` — the injector taxonomy behind one :class:`Fault`
  interface (machine crash with cold-cache restart, zone outage,
  network partition, link degradation, datastore brownout, gray
  failure);
* :mod:`.schedule` — :class:`FaultSchedule` places injectors on the
  simulation clock, validates the composition statically, and logs
  what actually fired;
* :mod:`.scenarios` — named recipes resolving targets from any
  deployment (the ``repro chaos`` suite);
* :mod:`.harness` / :mod:`.scorecard` — run a scenario against a
  steady-state hypothesis and grade detection time, MTTR, blast
  radius, and goodput lost.

Failure *detection and recovery* is deliberately not here: it lives in
:mod:`repro.cluster.health`, because how fast a system notices and
replaces a dead replica is a property of the system under test.
"""

from .faults import (ChaosContext, CorrelatedCrash, DatastoreSlowdown,
                     Fault, FaultTargets, GrayFailure, LinkDegradation,
                     MachineCrash, NetworkPartition, ZoneOutage)
from .harness import ChaosRun, run_chaos_scenario, run_chaos_suite
from .scenarios import (DEFAULT_SUITE, SCENARIOS, ChaosScenario,
                        register_scenario, scenario, scenario_names)
from .schedule import ChaosEvent, ChaosLog, FaultSchedule
from .scorecard import (Scorecard, SteadyStateHypothesis,
                        build_scorecard)

__all__ = [
    "Fault", "FaultTargets", "ChaosContext",
    "MachineCrash", "CorrelatedCrash", "ZoneOutage",
    "NetworkPartition", "LinkDegradation", "DatastoreSlowdown",
    "GrayFailure",
    "FaultSchedule", "ChaosLog", "ChaosEvent",
    "ChaosScenario", "SCENARIOS", "DEFAULT_SUITE",
    "register_scenario", "scenario", "scenario_names",
    "ChaosRun", "run_chaos_scenario", "run_chaos_suite",
    "Scorecard", "SteadyStateHypothesis", "build_scorecard",
]
