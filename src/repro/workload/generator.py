"""Open-loop workload generation.

The paper stresses *open-loop* load (Sec. 1, 3.7): requests arrive on
their own schedule regardless of completions, so a saturated service
accumulates queueing instead of throttling the client — the property
that makes saturation visible as unbounded tail-latency growth.

:class:`OpenLoopGenerator` drives a deployment with a non-homogeneous
Poisson process whose rate follows a pattern function, samples the
operation mix, attributes each request to a (possibly skewed) user, and
optionally drops requests at a token-bucket rate limiter.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional

from ..cluster.ratelimit import TokenBucket
from ..core.deployment import Deployment
from ..sim.rng import RandomStreams
from .users import UserPopulation

__all__ = ["OpenLoopGenerator"]

RateFn = Callable[[float], float]


class OpenLoopGenerator:
    """Poisson arrivals over an operation mix against one deployment."""

    def __init__(self, deployment: Deployment, rate_fn: RateFn,
                 mix: Optional[Mapping[str, float]] = None,
                 users: Optional[UserPopulation] = None,
                 rate_limiter: Optional[TokenBucket] = None,
                 seed: int = 1,
                 max_in_flight: int = 20000,
                 hedge_after: Optional[float] = None):
        self.deployment = deployment
        self.env = deployment.env
        self.rate_fn = rate_fn
        raw_mix = dict(mix) if mix is not None \
            else deployment.app.default_mix()
        total = sum(raw_mix.values())
        if total <= 0:
            raise ValueError("mix weights must sum to > 0")
        self.mix: Dict[str, float] = {k: v / total for k, v in raw_mix.items()}
        for op in self.mix:
            if op not in deployment.app.operations:
                raise ValueError(f"unknown operation {op!r} in mix")
        self.users = users
        self.rate_limiter = rate_limiter
        self.rng = RandomStreams(seed)
        self.max_in_flight = max_in_flight
        #: Tail-at-scale countermeasure (Dean & Barroso): if set, a
        #: duplicate request is issued after ``hedge_after`` seconds
        #: and the first completion wins; the client-visible latency is
        #: the minimum of the two.  The winning attempt's trace lands in
        #: the deployment collector like any other completion, with the
        #: hedged client latency substituted in.
        self.hedge_after = hedge_after
        if hedge_after is not None and hedge_after <= 0:
            raise ValueError("hedge_after must be > 0")
        self.hedges_issued = 0
        self.hedge_wins = 0
        self.issued = 0
        self.dropped = 0
        self.shed = 0
        self.in_flight = 0
        self._process = None

    def start(self, duration: float) -> None:
        """Begin generating arrivals for ``duration`` seconds."""
        if self._process is not None:
            raise RuntimeError("generator already started")
        if duration <= 0:
            raise ValueError("duration must be > 0")
        self._process = self.env.process(self._arrivals(duration),
                                         name="workload")

    def _next_operation(self) -> str:
        ops = list(self.mix.keys())
        weights = [self.mix[o] for o in ops]
        return self.rng.choice_weighted("gen.mix", ops, weights)

    def _arrivals(self, duration: float):
        stop = self.env.now + duration
        while self.env.now < stop:
            rate = self.rate_fn(self.env.now)
            if rate <= 0:
                raise ValueError(f"rate function returned {rate}")
            yield self.env.timeout(
                self.rng.exponential("gen.arrivals", 1.0 / rate))
            if self.env.now >= stop:
                break
            if self.rate_limiter is not None and not self.rate_limiter.allow():
                self.dropped += 1
                continue
            if self.in_flight >= self.max_in_flight:
                # Overload guard: a hopelessly saturated system would
                # otherwise accumulate unbounded simulation state.
                self.shed += 1
                continue
            user = self.users.next_user() if self.users is not None else None
            op = self._next_operation()
            self.issued += 1
            self.in_flight += 1
            if self.hedge_after is not None:
                self.env.process(self._hedged(op, user),
                                 name="hedged-request")
            else:
                proc = self.deployment.execute(op, user=user)
                proc.callbacks.append(self._finished)

    def _hedged(self, op: str, user):
        """Issue the request; duplicate it if it outlives the hedge
        delay; collect only the first completion, under the client
        latency (which starts at the *primary* send)."""
        start = self.env.now
        primary = self.deployment.execute(op, user=user, collect=False)
        timer = self.env.timeout(self.hedge_after)
        yield self.env.any_of([primary, timer])
        winner = primary
        if not primary.processed:
            self.hedges_issued += 1
            backup = self.deployment.execute(op, user=user, collect=False)
            yield self.env.any_of([primary, backup])
            if not primary.processed:
                self.hedge_wins += 1
                winner = backup
        self.deployment.collector.collect(
            winner.value, latency_override=self.env.now - start)
        self.in_flight -= 1

    def _finished(self, event) -> None:
        self.in_flight -= 1
