"""Load patterns: request arrival-rate functions of time.

The paper drives services with open-loop generators at constant rates
(throughput sweeps), replays real diurnal user traffic compressed in
time (Fig. 21 bottom), and studies flash-crowd-like overloads.  A
pattern is simply ``rate(t) -> requests/second``.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple

__all__ = ["constant", "diurnal", "step", "ramp", "trace_replay",
           "shifted", "scaled"]

RateFn = Callable[[float], float]


def constant(qps: float) -> RateFn:
    """A fixed arrival rate."""
    if qps <= 0:
        raise ValueError("qps must be > 0")
    return lambda t: qps


def diurnal(base_qps: float, peak_qps: float, period: float,
            peak_at: float = 0.5) -> RateFn:
    """A sinusoidal day/night pattern compressed into ``period`` seconds.

    Rate oscillates between ``base_qps`` and ``peak_qps``, peaking at
    ``peak_at`` (fraction of the period)."""
    if not 0 < base_qps <= peak_qps:
        raise ValueError("need 0 < base_qps <= peak_qps")
    if period <= 0:
        raise ValueError("period must be > 0")
    mid = (base_qps + peak_qps) / 2.0
    amp = (peak_qps - base_qps) / 2.0

    def rate(t: float) -> float:
        phase = 2.0 * math.pi * (t / period - peak_at)
        return mid + amp * math.cos(phase)

    return rate


def step(qps_before: float, qps_after: float, at: float) -> RateFn:
    """A step change at time ``at`` (load spike experiments)."""
    if qps_before <= 0 or qps_after <= 0:
        raise ValueError("rates must be > 0")

    def rate(t: float) -> float:
        return qps_after if t >= at else qps_before

    return rate


def ramp(qps_start: float, qps_end: float, duration: float) -> RateFn:
    """Linear ramp from start to end over ``duration``, then flat."""
    if qps_start <= 0 or qps_end <= 0 or duration <= 0:
        raise ValueError("rates and duration must be > 0")

    def rate(t: float) -> float:
        if t >= duration:
            return qps_end
        return qps_start + (qps_end - qps_start) * (t / duration)

    return rate


def shifted(pattern: RateFn, offset: float) -> RateFn:
    """A pattern displaced ``offset`` seconds later in time.

    Multi-region workloads shift one diurnal curve per region by its
    timezone (``RegionSpec.time_offset``): each population peaks when
    *its* day does, so global load is flatter than any single region's."""
    if offset == 0:
        return pattern
    return lambda t: pattern(t - offset)


def scaled(pattern: RateFn, factor: float) -> RateFn:
    """A pattern multiplied by a constant factor (population shares)."""
    if factor <= 0:
        raise ValueError("factor must be > 0")
    return lambda t: pattern(t) * factor


def trace_replay(points: Sequence[Tuple[float, float]]) -> RateFn:
    """Piecewise-linear replay of (time, qps) samples — used to replay
    the Social Network's real user traffic trace."""
    pts: List[Tuple[float, float]] = sorted(points)
    if len(pts) < 2:
        raise ValueError("need at least two trace points")
    if any(q <= 0 for _, q in pts):
        raise ValueError("trace rates must be > 0")

    def rate(t: float) -> float:
        if t <= pts[0][0]:
            return pts[0][1]
        if t >= pts[-1][0]:
            return pts[-1][1]
        for (t0, q0), (t1, q1) in zip(pts, pts[1:]):
            if t0 <= t <= t1:
                if t1 == t0:
                    return q1
                frac = (t - t0) / (t1 - t0)
                return q0 + (q1 - q0) * frac
        return pts[-1][1]  # unreachable

    return rate
