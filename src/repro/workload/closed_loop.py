"""Closed-loop workload generation.

The complement of :class:`~repro.workload.generator.OpenLoopGenerator`:
a fixed population of clients that each issue a request, wait for the
response, think for a while, and repeat.  Closed loops self-throttle
under saturation (offered load falls as latency rises), which is why
the paper insists on *open-loop* load for saturation studies — this
class exists both as a realistic interactive-user model and to
demonstrate that methodological point (see the tests: a closed loop
hides the saturation cliff an open loop exposes).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..core.deployment import Deployment
from ..sim.rng import RandomStreams
from ..workload.users import UserPopulation

__all__ = ["ClosedLoopGenerator"]


class ClosedLoopGenerator:
    """``n_clients`` think-time clients driving one deployment."""

    def __init__(self, deployment: Deployment, n_clients: int,
                 think_time: float,
                 mix: Optional[Mapping[str, float]] = None,
                 users: Optional[UserPopulation] = None,
                 seed: int = 1):
        if n_clients < 1:
            raise ValueError("n_clients must be >= 1")
        if think_time < 0:
            raise ValueError("think_time must be >= 0")
        self.deployment = deployment
        self.env = deployment.env
        self.n_clients = n_clients
        self.think_time = think_time
        raw_mix = dict(mix) if mix is not None \
            else deployment.app.default_mix()
        total = sum(raw_mix.values())
        if total <= 0:
            raise ValueError("mix weights must sum to > 0")
        self.mix: Dict[str, float] = {k: v / total
                                      for k, v in raw_mix.items()}
        for op in self.mix:
            if op not in deployment.app.operations:
                raise ValueError(f"unknown operation {op!r} in mix")
        self.users = users
        self.rng = RandomStreams(seed)
        self.completed = 0
        self._started = False

    def start(self, duration: float) -> None:
        """Launch all clients; each stops issuing after ``duration``."""
        if self._started:
            raise RuntimeError("generator already started")
        if duration <= 0:
            raise ValueError("duration must be > 0")
        self._started = True
        stop = self.env.now + duration
        for client in range(self.n_clients):
            self.env.process(self._client(client, stop),
                             name=f"client-{client}")

    def _next_operation(self) -> str:
        ops = list(self.mix.keys())
        weights = [self.mix[o] for o in ops]
        return self.rng.choice_weighted("closed.mix", ops, weights)

    def _client(self, client_id: int, stop: float):
        # Stagger client start-up so the loop doesn't thunder.
        yield self.env.timeout(
            self.rng.uniform("closed.stagger", 0.0,
                             max(self.think_time, 1e-3)))
        while self.env.now < stop:
            user = self.users.next_user() if self.users is not None \
                else client_id
            op = self._next_operation()
            yield self.deployment.execute(op, user=user)
            self.completed += 1
            if self.think_time > 0:
                yield self.env.timeout(self.rng.exponential(
                    "closed.think", self.think_time))
