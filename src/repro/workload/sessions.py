"""Session-based user behavior synthesis.

Section 8's input is "real user-generated traffic" from several hundred
registered users.  This module synthesizes that kind of traffic: each
user runs *sessions* — login, then a random walk over a per-application
behavior graph (read timelines, occasionally post, sometimes follow
someone), with think times between actions — producing both an
operation stream statistically unlike an i.i.d. mix (bursty, per-user
correlated) and an empirical (time, qps) trace that
:func:`repro.workload.patterns.trace_replay` can replay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim.rng import RandomStreams
from .users import UserPopulation

__all__ = ["BehaviorGraph", "SessionSynthesizer", "SOCIAL_BEHAVIOR"]


@dataclass
class BehaviorGraph:
    """A first-order Markov model over an application's operations."""

    #: Operation issued when a session starts.
    entry: str
    #: transitions[op] = [(next_op, probability), ...]; probabilities
    #: per row must sum to <= 1 — the remainder ends the session.
    transitions: Dict[str, List[Tuple[str, float]]]

    def __post_init__(self):
        for op, row in self.transitions.items():
            total = sum(p for _, p in row)
            if total > 1.0 + 1e-9:
                raise ValueError(
                    f"transition row {op!r} sums to {total} > 1")

    def next_operation(self, current: str, u: float) -> Optional[str]:
        """Next operation for uniform draw ``u``; None ends the session."""
        acc = 0.0
        for op, p in self.transitions.get(current, []):
            acc += p
            if u < acc:
                return op
        return None


#: A Social-Network behavior: log in, read a few timelines, sometimes
#: react or post, occasionally search or follow.
SOCIAL_BEHAVIOR = BehaviorGraph(
    entry="login",
    transitions={
        "login": [("readTimeline", 0.9), ("userInfo", 0.1)],
        "readTimeline": [("readTimeline", 0.45),
                         ("favorite", 0.1),
                         ("repost", 0.05),
                         ("composePost-text", 0.08),
                         ("composePost-image", 0.03),
                         ("composePost-video", 0.01),
                         ("search", 0.05),
                         ("userInfo", 0.08)],
        "favorite": [("readTimeline", 0.8)],
        "repost": [("readTimeline", 0.75)],
        "composePost-text": [("readTimeline", 0.7)],
        "composePost-image": [("readTimeline", 0.7)],
        "composePost-video": [("readTimeline", 0.7)],
        "search": [("readTimeline", 0.5), ("userInfo", 0.3)],
        "userInfo": [("readTimeline", 0.5), ("followUser", 0.2)],
        "followUser": [("readTimeline", 0.7)],
    },
)


@dataclass
class SessionEvent:
    """One synthesized request."""

    time: float
    user: int
    operation: str


class SessionSynthesizer:
    """Generate a timestamped request stream from user sessions."""

    def __init__(self, behavior: BehaviorGraph,
                 users: UserPopulation,
                 think_time: float = 4.0,
                 session_rate_per_user: float = 1.0 / 600.0,
                 seed: int = 0):
        if think_time <= 0 or session_rate_per_user <= 0:
            raise ValueError("think_time and session rate must be > 0")
        self.behavior = behavior
        self.users = users
        self.think_time = think_time
        self.session_rate = session_rate_per_user
        self.rng = RandomStreams(seed)

    def synthesize(self, duration: float) -> List[SessionEvent]:
        """All requests in ``[0, duration)``, time-ordered.

        Session starts are Poisson per active user, with per-user rates
        weighted by the population's popularity skew (heavy users both
        send more requests *and* start more sessions — the Sec. 8
        observation that ~5 % of users generate >30 % of requests)."""
        if duration <= 0:
            raise ValueError("duration must be > 0")
        events: List[SessionEvent] = []
        n = self.users.n_users
        total_rate = self.session_rate * n
        t = 0.0
        while True:
            t += self.rng.exponential("sessions.arrivals",
                                      1.0 / total_rate)
            if t >= duration:
                break
            user = self.users.next_user()
            events.extend(self._session(user, t, duration))
        events.sort(key=lambda e: e.time)
        return events

    def _session(self, user: int, start: float,
                 duration: float) -> List[SessionEvent]:
        out = [SessionEvent(time=start, user=user,
                            operation=self.behavior.entry)]
        op = self.behavior.entry
        t = start
        while True:
            t += self.rng.exponential("sessions.think", self.think_time)
            if t >= duration:
                break
            op = self.behavior.next_operation(
                op, self.rng.uniform("sessions.walk", 0.0, 1.0))
            if op is None:
                break
            out.append(SessionEvent(time=t, user=user, operation=op))
        return out

    def to_rate_trace(self, events: Sequence[SessionEvent],
                      bucket: float,
                      duration: float) -> List[Tuple[float, float]]:
        """Bucketize a request stream into a (time, qps) trace suitable
        for :func:`repro.workload.patterns.trace_replay`."""
        if bucket <= 0:
            raise ValueError("bucket must be > 0")
        n_buckets = max(1, int(duration / bucket))
        counts = [0] * n_buckets
        for event in events:
            index = min(n_buckets - 1, int(event.time / bucket))
            counts[index] += 1
        return [(i * bucket + bucket / 2.0,
                 max(count / bucket, 1e-9))
                for i, count in enumerate(counts)]
