"""Workload substrate: open-loop generators, patterns, user skew."""

from .closed_loop import ClosedLoopGenerator
from .generator import OpenLoopGenerator
from .patterns import (constant, diurnal, ramp, scaled, shifted, step,
                       trace_replay)
from .sessions import SOCIAL_BEHAVIOR, BehaviorGraph, SessionSynthesizer
from .users import UserPopulation

__all__ = [
    "ClosedLoopGenerator",
    "OpenLoopGenerator",
    "BehaviorGraph",
    "SOCIAL_BEHAVIOR",
    "SessionSynthesizer",
    "UserPopulation",
    "constant",
    "diurnal",
    "ramp",
    "scaled",
    "shifted",
    "step",
    "trace_replay",
]
