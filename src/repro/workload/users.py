"""User populations with popularity skew.

Section 8: "a small fraction of users, around 5%, being responsible for
more than 30% of the requests", and Fig. 22b sweeps skew defined as
``100 - u`` where ``u`` is the fraction of users initiating 90 % of
total requests.  :class:`UserPopulation` draws request-originating users
from a Zipf distribution and exposes both directions of that mapping:
pick a Zipf exponent to hit a target skew, and measure the realized
skew of a sample.
"""

from __future__ import annotations

from typing import Optional

from ..sim.rng import RandomStreams, ZipfSampler

__all__ = ["UserPopulation"]


class UserPopulation:
    """A fixed set of users whose request rates follow a Zipf law."""

    def __init__(self, n_users: int, zipf_s: float,
                 rng: Optional[RandomStreams] = None,
                 stream: str = "users"):
        if n_users < 1:
            raise ValueError("n_users must be >= 1")
        self.n_users = n_users
        self.zipf_s = zipf_s
        self._rng = rng or RandomStreams(0)
        self._sampler: ZipfSampler = self._rng.zipf(stream, n_users, zipf_s)

    def next_user(self) -> int:
        """Draw the user originating the next request (0 = hottest)."""
        return self._sampler.sample()

    def skew_percent(self, mass: float = 0.9) -> float:
        """The paper's skew metric: ``100 - u`` where ``u`` is the
        percentage of users (hottest first) that generate ``mass`` of
        the request volume.  0 means uniform load; 99 means one percent
        of users generate 90 % of requests."""
        if not 0 < mass < 1:
            raise ValueError("mass must be in (0,1)")
        cumulative = 0.0
        for rank in range(self.n_users):
            cumulative += self._sampler.probability(rank)
            if cumulative >= mass:
                u_percent = 100.0 * (rank + 1) / self.n_users
                return 100.0 - u_percent
        return 0.0

    @classmethod
    def with_skew(cls, n_users: int, skew_percent: float,
                  rng: Optional[RandomStreams] = None,
                  stream: str = "users") -> "UserPopulation":
        """Build a population whose realized skew is close to the target.

        Binary-searches the Zipf exponent; skew is monotone in it."""
        if not 0.0 <= skew_percent < 100.0:
            raise ValueError("skew_percent must be in [0, 100)")
        lo, hi = 0.0, 8.0
        best = cls(n_users, 0.0, rng=rng, stream=stream)
        if skew_percent == 0.0:
            return best
        for _ in range(40):
            mid = (lo + hi) / 2.0
            candidate = cls(n_users, mid, rng=rng, stream=stream)
            realized = candidate.skew_percent()
            best = candidate
            if realized < skew_percent:
                lo = mid
            else:
                hi = mid
        return best
