"""Online QoS-violation prediction and proactive mitigation.

The observability stack (PR 3) can say *which* tier caused a violation
— after users already felt it.  The chaos layer (PR 4) grades how fast
the system recovers — after the fault landed.  This package closes the
loop from observability back to control: it watches the same scraped
metric series and trace stream the attribution engine reads, but
*during* the run, and raises a predicted-violation event with a named
culprit tier **before** the end-to-end tail crosses the QoS target —
early enough for proactive action (pre-scaling the culprit,
pre-tripping breakers into it, shedding at the front door) to beat the
reactive autoscalers.

Layers
------
:mod:`features`
    Deterministic sliding-window feature extraction on the scrape
    cadence (per-tier exclusive latency, queue-depth slope, CPU
    utilization, breaker-open fraction, cache hit ratio, arrival-rate
    trend).
:mod:`labels`
    Training labels derived from the QoS-attribution episodes at a
    configurable lead-time horizon.
:mod:`models`
    Pure-python, seeded online learners: SGD logistic regression, a
    threshold heuristic, and a majority-class floor.
:mod:`predictor`
    The in-sim online predictor: runs the model on every scrape,
    emits :class:`~repro.predict.predictor.PredictionEvent`\\ s.
:mod:`mitigation`
    Proactive actions wired into the existing control machinery.
:mod:`harness`
    Train-on-one-seed / evaluate-on-held-out-seeds workflow behind
    ``repro predict``.

Everything is keyed on sim time and seeded RNG streams: the same seed
produces byte-identical feature matrices, model weights, and
prediction event logs.
"""

from .features import FEATURE_NAMES, FeatureRow, FeatureTracker
from .labels import LabeledExample, episodes_for_labeling, label_rows
from .models import (
    MajorityClassModel,
    OnlineLogisticModel,
    ThresholdHeuristicModel,
)
from .predictor import OnlinePredictor, PredictionEvent
from .mitigation import MitigationEvent, ProactiveMitigator
from .harness import (
    EvalReport,
    ScenarioSpec,
    predict_scenario,
    predict_scenario_names,
    run_predict_pipeline,
    run_scenario,
)

__all__ = [
    "FEATURE_NAMES",
    "FeatureRow",
    "FeatureTracker",
    "LabeledExample",
    "episodes_for_labeling",
    "label_rows",
    "MajorityClassModel",
    "OnlineLogisticModel",
    "ThresholdHeuristicModel",
    "OnlinePredictor",
    "PredictionEvent",
    "MitigationEvent",
    "ProactiveMitigator",
    "EvalReport",
    "ScenarioSpec",
    "predict_scenario",
    "predict_scenario_names",
    "run_predict_pipeline",
    "run_scenario",
]
