"""Proactive mitigation: act on a prediction before the violation.

The whole point of predicting a violation is doing something about it
while there is still lead time.  :class:`ProactiveMitigator` receives
:class:`~repro.predict.predictor.PredictionEvent`\\ s and drives the
*existing* control machinery — nothing here invents a new actuator:

* **pre-scale** — scale the predicted culprit out through the same
  :class:`~repro.cluster.scaling.ScalingBookkeeper` the reactive
  autoscalers use (same provisioning delay, same event log), but
  triggered by the forecast instead of by an already-saturated gauge.
  Under blocking-connection protocols (HTTP/1, Fig. 17 case B) the
  culprit's direct upstream callers are pre-scaled too: connection
  pools are keyed on the *caller* instance, so replicas behind a
  starved edge are useless until the edge itself is widened;
* **pre-trip** — force the circuit breakers on edges *into* the
  predicted culprit open (``CircuitBreaker.trip``): callers start
  failing fast through the normal open → half-open → probe cycle
  instead of parking workers on a tier forecast to drown;
* **shed** — tighten the front-door
  :class:`~repro.resilience.shedder.LoadShedder` to a fraction of its
  limit for a hold period, then restore it — targeted, temporary
  admission control while capacity catches up.

Every action lands in :attr:`events` as a :class:`MitigationEvent`,
so the ablation harness can line actions up against episodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..cluster.scaling import ScalingBookkeeper

__all__ = ["MitigationEvent", "ProactiveMitigator"]

#: Actions the mitigator can take, in the order they are attempted.
ACTIONS: Tuple[str, ...] = ("prescale", "pretrip", "shed")


@dataclass(frozen=True)
class MitigationEvent:
    """One proactive action taken on a prediction."""

    time: float
    service: str
    action: str
    detail: str = ""

    def to_dict(self) -> dict:
        return {"time": self.time, "service": self.service,
                "action": self.action, "detail": self.detail}


class ProactiveMitigator:
    """Turns prediction events into control actions.

    ``actions`` selects which levers to pull (subset of
    ``("prescale", "pretrip", "shed")``).  ``prescale_step`` replicas
    are added per alert through the shared bookkeeper;
    ``shed_fraction``/``shed_hold`` bound the temporary front-door
    tightening.  Shedding applies to the deployment's front-door
    shedder, never at the culprit itself — shedding *at* the culprit
    would starve the probes that let its breakers close again."""

    def __init__(self, env, deployment,
                 actions: Tuple[str, ...] = ("prescale",),
                 bookkeeper: Optional[ScalingBookkeeper] = None,
                 startup_delay: float = 10.0,
                 max_instances: int = 64,
                 prescale_step: int = 1,
                 shed_fraction: float = 0.5,
                 shed_hold: float = 10.0):
        for action in actions:
            if action not in ACTIONS:
                raise ValueError(f"unknown mitigation action "
                                 f"{action!r}")
        if prescale_step < 1:
            raise ValueError("prescale_step must be >= 1")
        if not 0.0 < shed_fraction <= 1.0:
            raise ValueError("shed_fraction must be in (0, 1]")
        if shed_hold <= 0:
            raise ValueError("shed_hold must be > 0")
        self.env = env
        self.deployment = deployment
        self.actions = tuple(actions)
        self.bookkeeper = bookkeeper or ScalingBookkeeper(
            env, deployment, startup_delay=startup_delay,
            max_instances=max_instances)
        self.prescale_step = prescale_step
        self.shed_fraction = shed_fraction
        self.shed_hold = shed_hold
        self.events: List[MitigationEvent] = []
        self._shed_restore: Optional[float] = None
        self._shed_until = 0.0

    def on_prediction(self, event) -> None:
        """Apply every configured action to one prediction event."""
        if "prescale" in self.actions:
            self._prescale(event)
        if "pretrip" in self.actions:
            self._pretrip(event)
        if "shed" in self.actions:
            self._shed(event)

    # -- actions --------------------------------------------------------
    def _upstream_callers(self, service: str) -> List[str]:
        """Services that call ``service`` directly in any operation."""
        callers = set()
        for op in self.deployment.app.operations.values():
            for node in op.root.walk():
                for group in node.groups:
                    for child in group:
                        if child.service == service:
                            callers.add(node.service)
        return sorted(callers)

    def _prescale_one(self, service: str, detail_suffix: str = "") -> None:
        for _ in range(self.prescale_step):
            if not self.bookkeeper.can_scale_out(service):
                break
            scaled = self.bookkeeper.scale_out(
                service, self.deployment.utilization(service),
                action="prescale")
            if scaled is None:
                break
            self.events.append(MitigationEvent(
                time=self.env.now, service=service, action="prescale",
                detail=f"replicas -> {scaled.instances}{detail_suffix}"))

    def _prescale(self, event) -> None:
        service = event.service
        self._prescale_one(service)
        if self.deployment.costs.blocking_connections:
            # Connection pools live on the caller side of each edge:
            # new culprit replicas sit idle until the pools feeding the
            # edge are widened by scaling the callers too.
            for caller in self._upstream_callers(service):
                self._prescale_one(caller, " (widen edge)")

    def _pretrip(self, event) -> None:
        service = event.service
        tripped = 0
        breakers = self.deployment.breakers()
        for key in sorted(breakers, key=lambda k: tuple(map(str, k))):
            if len(key) < 2 or key[1] != service:
                continue
            breaker = breakers[key]
            if breaker.state != "open":
                breaker.trip()
                tripped += 1
        if tripped:
            self.events.append(MitigationEvent(
                time=self.env.now, service=service, action="pretrip",
                detail=f"{tripped} edge(s) opened"))

    def _shed(self, event) -> None:
        shedder = getattr(self.deployment, "shedder", None)
        if shedder is None:
            return
        if self._shed_restore is not None:
            # Already tightened: extend the hold instead of stacking
            # multiplicative reductions into a self-inflicted outage.
            self._shed_until = self.env.now + self.shed_hold
            return
        original = shedder.max_concurrent
        tightened = max(1, int(original * self.shed_fraction))
        shedder.set_limit(tightened)
        self._shed_restore = float(original)
        self._shed_until = self.env.now + self.shed_hold
        self.events.append(MitigationEvent(
            time=self.env.now, service=event.service, action="shed",
            detail=f"front-door limit {original} -> {tightened} "
                   f"for {self.shed_hold:g}s"))
        self.env.process(self._restore_shedder(shedder),
                         name="predict-shed-restore")

    def _restore_shedder(self, shedder):
        while True:
            remaining = self._shed_until - self.env.now
            if remaining <= 0:
                break
            yield self.env.timeout(remaining)
        shedder.set_limit(int(self._shed_restore))
        self.events.append(MitigationEvent(
            time=self.env.now, service="", action="shed_restore",
            detail=f"front-door limit restored to "
                   f"{int(self._shed_restore)}"))
        self._shed_restore = None
