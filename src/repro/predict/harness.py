"""Train / evaluate workflow behind ``repro predict``.

The pipeline mirrors how a production early-warning model would be
validated:

1. **Train** on one (or a few) seeded runs of a scenario: run the
   simulation with a :class:`~repro.predict.features.FeatureTracker`
   attached, attribute QoS violations *post hoc*, label the feature
   matrix at the lead-time horizon, fit the model.
2. **Evaluate** on held-out seeds: fresh runs the model never saw,
   scored on alert precision, episode recall, and measured lead time
   (alert to episode start).
3. Optionally **mitigate**: re-run the held-out seeds with the
   predictor driving a
   :class:`~repro.predict.mitigation.ProactiveMitigator` and compare
   violation tier-seconds against the unmitigated run — the
   violations-avoided scorecard.

Scenarios are **ramped** versions of the paper's Sec. 7 case studies:
a step fault violates the instant it lands, leaving nothing to
predict, so the fault ramps up over several scrape ticks — the window
where queue slopes and block shares rise but the tail has not crossed
the target yet is exactly the predictor's opportunity.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..arch import XEON
from ..cluster import Cluster
from ..core.deployment import Deployment
from ..core.experiment import run_experiment
from ..obs import MetricsRegistry, attribute_qos_violations
from ..resilience import BreakerConfig, LoadShedder, ResiliencePolicy
from ..services import Application, CallNode, Operation, Protocol, seq
from ..services.datastores import memcached, nginx
from ..sim import Environment
from ..stats.tables import format_table
from .features import FeatureTracker
from .labels import episodes_for_labeling, label_rows, split_xy
from .mitigation import ProactiveMitigator
from .models import build_model
from .predictor import OnlinePredictor

__all__ = [
    "ScenarioSpec",
    "ScenarioRun",
    "EvalReport",
    "MitigationComparison",
    "PipelineReport",
    "predict_scenario",
    "predict_scenario_names",
    "run_predict_pipeline",
    "run_scenario",
    "violation_tier_seconds",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """One ramped-fault scenario the pipeline can train/evaluate on."""

    name: str
    description: str
    qps: float
    duration: float
    warmup: float
    #: QoS-attribution window (seconds).
    window: float
    #: The tier the ramp degrades (ground truth for the benchmark's
    #: sanity checks; labels still come from attribution).
    fault_service: str
    #: Sim time the ramp begins.
    fault_start: float
    #: Ramp length (seconds) and number of equal steps.
    ramp_duration: float
    ramp_steps: int
    #: Build a deployment on ``env`` with ``seed``.
    build: Callable[[Environment, int], Deployment]
    #: Apply the fault at ramp fraction ``frac`` in (0, 1].
    apply_fault: Callable[[Deployment, float], None]
    #: QoS target for attribution (None: the app's own bound).  Set
    #: high enough that the early ramp steps degrade without
    #: violating — the window the predictor exists for.
    target: Optional[float] = None


def _build_backpressure(env: Environment, seed: int) -> Deployment:
    """The Fig. 17 two-tier nginx + memcached app over blocking
    HTTP/1: a slow cache backpressures a busy-waiting front tier.

    The cache's worker pool is deliberately tight: the injected stall
    holds a worker slot, so once ``qps x stall`` exceeds the slots the
    queue — not the stall itself — is what breaks the tail.  That is
    the lever that makes *pre-scaling* curative: more replicas mean
    more slots, and the per-request stall alone stays under the
    target."""
    web = dataclasses.replace(nginx("nginx", work_mean=2e-3),
                              max_workers=64)
    cache = dataclasses.replace(memcached("cache").scaled(20),
                                max_workers=4)
    app = Application(
        name="nginx-memcached",
        services={"nginx": web, "cache": cache},
        operations={"read": Operation(name="read", root=CallNode(
            service="nginx", groups=seq(CallNode(service="cache"))))},
        protocol=Protocol.HTTP,
        qos_latency=0.06,
    )
    # Front-door admission control: bounds the front tier's in-flight
    # work during the collapse, so the attribution evidence points at
    # the slow cache rather than at nginx's own exploding queue — and
    # gives the 'shed' mitigation action a lever to tighten.
    return Deployment(env, app, Cluster.homogeneous(env, XEON, 4),
                      cores={"nginx": 1, "cache": 4}, seed=seed,
                      shedder=LoadShedder(max_concurrent=32))


def _build_cascade(env: Environment, seed: int) -> Deployment:
    """The Fig. 19/20 social-network cascade: a datastore deep in the
    fan-out slows down and the violation propagates to the front."""
    from ..apps import build_app
    app = build_app("social_network")
    # Tighten the datastore's worker pool so the ramped stall turns
    # into slot exhaustion (see _build_backpressure): scale-out can
    # then actually end the episode.
    app.services["mongo-posts"] = dataclasses.replace(
        app.services["mongo-posts"], max_workers=2)
    policy = ResiliencePolicy(rpc_timeout=1.0,
                              breaker=BreakerConfig())
    return Deployment(env, app, Cluster.homogeneous(env, XEON, 4),
                      seed=seed, default_policy=policy,
                      shedder=LoadShedder(max_concurrent=32))


_SCENARIOS: Dict[str, ScenarioSpec] = {}

for _spec in (
    ScenarioSpec(
        name="backpressure",
        description="Fig. 17 case B: ramped cache delay "
                    "backpressures nginx over HTTP/1",
        qps=150.0, duration=40.0, warmup=4.0, window=2.0,
        fault_service="cache", fault_start=10.0,
        ramp_duration=16.0, ramp_steps=8,
        build=_build_backpressure,
        apply_fault=lambda d, frac: d.delay_service("cache",
                                                    0.04 * frac),
        target=0.1,
    ),
    ScenarioSpec(
        name="cascade",
        description="Fig. 19/20: ramped mongo-posts delay cascades "
                    "through the social-network fan-out",
        qps=80.0, duration=40.0, warmup=4.0, window=2.0,
        fault_service="mongo-posts", fault_start=10.0,
        ramp_duration=16.0, ramp_steps=8,
        build=_build_cascade,
        apply_fault=lambda d, frac: d.delay_service("mongo-posts",
                                                    0.03 * frac),
        target=0.08,
    ),
):
    _SCENARIOS[_spec.name] = _spec


def predict_scenario_names() -> List[str]:
    """Registered scenario names."""
    return list(_SCENARIOS)


def predict_scenario(name: str) -> ScenarioSpec:
    """Look up one scenario spec."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown predict scenario {name!r}; have: "
                       f"{', '.join(_SCENARIOS)}") from None


def _install_ramp(env: Environment, deployment: Deployment,
                  spec: ScenarioSpec) -> None:
    def ramp():
        yield env.timeout(spec.fault_start)
        step = spec.ramp_duration / spec.ramp_steps
        for i in range(1, spec.ramp_steps + 1):
            spec.apply_fault(deployment, i / spec.ramp_steps)
            if i < spec.ramp_steps:
                yield env.timeout(step)

    env.process(ramp(), name=f"ramp-{spec.fault_service}")


@dataclass
class ScenarioRun:
    """Everything one instrumented scenario run produced."""

    seed: int
    result: object
    tracker: FeatureTracker
    report: object
    predictor: Optional[OnlinePredictor] = None
    mitigator: Optional[ProactiveMitigator] = None
    #: Reactive autoscaler attached via ``scaler_factory`` (ablations).
    scaler: Optional[object] = None


def run_scenario(spec: ScenarioSpec, seed: int,
                 feature_window: int = 8,
                 model=None, threshold: float = 0.5,
                 cooldown: float = 5.0,
                 mitigate: Sequence[str] = (),
                 startup_delay: float = 6.0,
                 scaler_factory=None) -> ScenarioRun:
    """One instrumented run: tracker always, predictor/mitigator when
    a fitted ``model`` is given.

    ``scaler_factory(env, deployment, collector)`` may build a
    *reactive* autoscaler to run instead of (or alongside) the
    predictor — the hook the predictive-vs-reactive ablation uses.
    The returned object's ``start()`` is called before the clock
    runs."""
    env = Environment()
    deployment = spec.build(env, seed)
    registry = MetricsRegistry()
    result = run_experiment(deployment, spec.qps,
                            duration=spec.duration, warmup=spec.warmup,
                            seed=seed, run_env=False, metrics=registry)
    _install_ramp(env, deployment, spec)
    services = sorted(deployment.service_names())
    tracker = FeatureTracker(registry, result.collector, services,
                             window=feature_window).attach()
    predictor = None
    mitigator = None
    if model is not None:
        if mitigate:
            mitigator = ProactiveMitigator(
                env, deployment, actions=tuple(mitigate),
                startup_delay=startup_delay)
        predictor = OnlinePredictor(
            tracker, model, threshold=threshold, cooldown=cooldown,
            min_history=feature_window,
            mitigator=mitigator).attach()
    scaler = None
    if scaler_factory is not None:
        scaler = scaler_factory(env, deployment, result.collector)
        scaler.start()
    env.run(until=spec.duration)
    report = attribute_qos_violations(result, target=spec.target,
                                      window=spec.window)
    return ScenarioRun(seed=seed, result=result, tracker=tracker,
                       report=report, predictor=predictor,
                       mitigator=mitigator, scaler=scaler)


def violation_tier_seconds(report, inflation: float = 2.0,
                           exclusive_share: float = 0.3) -> float:
    """Area of attributed QoS damage: episode length x implicated
    tiers (same evidence bar as the chaos scorecard's blast radius)."""
    total = 0.0
    for ep in report.episodes:
        implicated = 0
        for ev in ep.evidence:
            inflated = (ev.inflation is not None
                        and ev.inflation >= inflation)
            if inflated or ev.exclusive_share >= exclusive_share:
                implicated += 1
        total += (ep.end - ep.start) * implicated
    return total


@dataclass
class EvalReport:
    """Prediction quality on one held-out seed."""

    seed: int
    episodes: int
    caught: int
    true_alerts: int
    false_alerts: int
    late_alerts: int
    lead_times: List[float] = field(default_factory=list)

    @property
    def precision(self) -> Optional[float]:
        scored = self.true_alerts + self.false_alerts
        if scored == 0:
            return None
        return self.true_alerts / scored

    @property
    def recall(self) -> Optional[float]:
        if self.episodes == 0:
            return None
        return self.caught / self.episodes

    @property
    def mean_lead(self) -> Optional[float]:
        if not self.lead_times:
            return None
        return sum(self.lead_times) / len(self.lead_times)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "episodes": self.episodes,
            "caught": self.caught,
            "true_alerts": self.true_alerts,
            "false_alerts": self.false_alerts,
            "late_alerts": self.late_alerts,
            "precision": self.precision,
            "recall": self.recall,
            "lead_times": list(self.lead_times),
            "mean_lead": self.mean_lead,
        }


def score_run(run: ScenarioRun, horizon: float) -> EvalReport:
    """Line one run's alerts up against its attribution episodes.

    An alert fired **during** any episode is *late*: the violation is
    already observable, so the alert is detection, not prediction —
    excluded from precision rather than rewarded or punished.  A
    pre-episode alert is **true** when an episode starts within its
    horizon and names the alerted tier as culprit, **false**
    otherwise.  An episode is **caught** when a true alert preceded
    it; its lead time is episode start minus the earliest such
    alert."""
    episodes = episodes_for_labeling(run.report)
    alerts = run.predictor.events if run.predictor else []
    true_alerts = 0
    false_alerts = 0
    late_alerts = 0
    for alert in alerts:
        t = alert.time
        during = False
        anticipates = False
        for ep in episodes:
            if ep.start <= t < ep.end:
                during = True
            elif ep.culprit == alert.service \
                    and t < ep.start <= t + horizon:
                anticipates = True
        if during:
            late_alerts += 1
        elif anticipates:
            true_alerts += 1
        else:
            false_alerts += 1
    caught = 0
    lead_times: List[float] = []
    for ep in episodes:
        first = None
        for alert in alerts:
            if alert.service == ep.culprit \
                    and alert.time < ep.start <= alert.time + horizon:
                first = alert.time
                break
        if first is not None:
            caught += 1
            lead_times.append(ep.start - first)
    return EvalReport(seed=run.seed, episodes=len(episodes),
                      caught=caught, true_alerts=true_alerts,
                      false_alerts=false_alerts,
                      late_alerts=late_alerts, lead_times=lead_times)


@dataclass
class MitigationComparison:
    """Violations-avoided scorecard for one held-out seed."""

    seed: int
    base_tier_seconds: float
    mitigated_tier_seconds: float
    base_episodes: int
    mitigated_episodes: int
    actions: int

    @property
    def avoided(self) -> float:
        return self.base_tier_seconds - self.mitigated_tier_seconds

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "base_tier_seconds": self.base_tier_seconds,
            "mitigated_tier_seconds": self.mitigated_tier_seconds,
            "base_episodes": self.base_episodes,
            "mitigated_episodes": self.mitigated_episodes,
            "actions": self.actions,
            "avoided_tier_seconds": self.avoided,
        }


@dataclass
class PipelineReport:
    """The full train/eval(/mitigate) outcome for one scenario."""

    scenario: str
    model: str
    horizon: float
    threshold: float
    train_seeds: Tuple[int, ...]
    eval_seeds: Tuple[int, ...]
    train_examples: int
    train_positives: int
    model_state: dict
    evals: List[EvalReport] = field(default_factory=list)
    mitigations: List[MitigationComparison] = field(
        default_factory=list)

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "model": self.model,
            "horizon": self.horizon,
            "threshold": self.threshold,
            "train_seeds": list(self.train_seeds),
            "eval_seeds": list(self.eval_seeds),
            "train_examples": self.train_examples,
            "train_positives": self.train_positives,
            "model_state": self.model_state,
            "evals": [e.to_dict() for e in self.evals],
            "mitigations": [m.to_dict() for m in self.mitigations],
        }

    def render(self) -> str:
        def fmt(value, suffix=""):
            return "-" if value is None else f"{value:.2f}{suffix}"

        lines = [
            f"predictive QoS pipeline: scenario={self.scenario} "
            f"model={self.model} horizon={self.horizon:g}s "
            f"threshold={self.threshold:g}",
            f"trained on seed(s) "
            f"{', '.join(map(str, self.train_seeds))}: "
            f"{self.train_examples} examples, "
            f"{self.train_positives} positive",
        ]
        rows = [[str(e.seed), str(e.episodes),
                 f"{e.caught}/{e.episodes}",
                 fmt(e.precision), fmt(e.recall),
                 fmt(e.mean_lead, "s"),
                 str(e.false_alerts), str(e.late_alerts)]
                for e in self.evals]
        lines.append(format_table(
            ["seed", "episodes", "caught", "precision", "recall",
             "mean lead", "false", "late"], rows,
            title="held-out evaluation"))
        if self.mitigations:
            rows = [[str(m.seed), f"{m.base_tier_seconds:.1f}",
                     f"{m.mitigated_tier_seconds:.1f}",
                     f"{m.avoided:.1f}",
                     f"{m.base_episodes} -> {m.mitigated_episodes}",
                     str(m.actions)]
                    for m in self.mitigations]
            lines.append(format_table(
                ["seed", "unmitigated (tier-s)", "mitigated (tier-s)",
                 "avoided", "episodes", "actions"], rows,
                title="violations avoided (proactive mitigation)"))
        return "\n".join(lines)


def run_predict_pipeline(scenario: str = "backpressure",
                         model_kind: str = "logistic",
                         train_seeds: Sequence[int] = (1, 4, 5),
                         eval_seeds: Sequence[int] = (2, 3),
                         horizon: float = 8.0,
                         threshold: float = 0.6,
                         feature_window: int = 8,
                         mitigate: Sequence[str] = (),
                         ) -> PipelineReport:
    """The whole workflow: train, evaluate held-out, optionally
    re-run the held-out seeds with proactive mitigation.

    Training pools several seeded runs by default: a single run has
    so few positive ticks that SGD latches onto that run's arrival
    noise and per-tier baseline offsets; pooling seeds washes the
    seed-specific structure out and leaves the violation signature.
    """
    spec = predict_scenario(scenario)
    examples = []
    for seed in train_seeds:
        run = run_scenario(spec, seed,
                           feature_window=feature_window)
        episodes = episodes_for_labeling(run.report)
        examples.extend(label_rows(run.tracker.matrix(), episodes,
                                   horizon=horizon))
    x, y = split_xy(examples)
    model = build_model(model_kind, seed=min(train_seeds))
    model.fit(x, y)

    report = PipelineReport(
        scenario=scenario, model=model_kind, horizon=horizon,
        threshold=threshold, train_seeds=tuple(train_seeds),
        eval_seeds=tuple(eval_seeds), train_examples=len(examples),
        train_positives=sum(y), model_state=model.to_dict())

    for seed in eval_seeds:
        run = run_scenario(spec, seed, feature_window=feature_window,
                           model=model, threshold=threshold)
        report.evals.append(score_run(run, horizon=horizon))
        if mitigate:
            mitigated = run_scenario(
                spec, seed, feature_window=feature_window,
                model=model, threshold=threshold,
                mitigate=mitigate)
            report.mitigations.append(MitigationComparison(
                seed=seed,
                base_tier_seconds=violation_tier_seconds(run.report),
                mitigated_tier_seconds=violation_tier_seconds(
                    mitigated.report),
                base_episodes=len(run.report.episodes),
                mitigated_episodes=len(mitigated.report.episodes),
                actions=len(mitigated.mitigator.events)
                if mitigated.mitigator else 0))
    return report
