"""Pure-python, seeded online learners for violation prediction.

Three models, one interface (:meth:`fit` / :meth:`predict_proba` /
:meth:`partial_fit` / :meth:`to_dict`), chosen as an honest ladder:

* :class:`MajorityClassModel` — the floor.  Predicts the training base
  rate for everything; any model that cannot beat it has learned
  nothing.
* :class:`ThresholdHeuristicModel` — the SRE rulebook: z-score the
  early-warning features against the healthy (negative-label)
  baseline and alert when enough of them deviate together.  No
  gradient anywhere; this is the baseline CI gates on.
* :class:`OnlineLogisticModel` — SGD logistic regression with L2,
  feature standardization, and a seeded shuffle
  (``random.Random(seed)``): the learned model the ablation pits
  against the reactive autoscalers.

Everything is stdlib-only float arithmetic in fixed iteration order:
the same seed and the same training matrix produce byte-identical
weights (see :meth:`OnlineLogisticModel.to_dict`).
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence, Tuple

from .features import FEATURE_NAMES

__all__ = [
    "MajorityClassModel",
    "ThresholdHeuristicModel",
    "OnlineLogisticModel",
    "build_model",
]

Vector = Sequence[float]

#: Features whose *rise* signals an impending violation: the heuristic
#: only alerts on upward deviations of these.  The scale-free ratios
#: carry the load; raw levels differ by orders of magnitude per tier.
_WARNING_FEATURES: Tuple[str, ...] = (
    "exclusive_ratio", "queue_ratio", "queue_slope", "block_share",
    "breaker_open_frac",
)


def _mean_std(column: Sequence[float]) -> Tuple[float, float]:
    n = len(column)
    if n == 0:
        return 0.0, 1.0
    mean = sum(column) / n
    var = sum((v - mean) ** 2 for v in column) / n
    return mean, max(math.sqrt(var), 1e-9)


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _median_mad(column: Sequence[float]) -> Tuple[float, float]:
    """Median and median-absolute-deviation (robust location/scale).

    Mean/std would let a handful of already-degraded rows near the
    label horizon inflate the 'healthy' spread and mute the alert; the
    median pair shrugs off that contamination."""
    if not column:
        return 0.0, 1.0
    med = _median(list(column))
    mad = _median([abs(v - med) for v in column])
    # 1.4826 rescales MAD to std under normality; floor keeps z finite
    # for near-constant features.
    return med, max(1.4826 * mad, 1e-3)


class MajorityClassModel:
    """Predicts the training base rate, unconditionally."""

    name = "majority"

    def __init__(self):
        self.base_rate = 0.0

    def fit(self, x: Sequence[Vector], y: Sequence[int]) -> None:
        self.base_rate = (sum(y) / len(y)) if y else 0.0

    def partial_fit(self, x: Vector, label: int) -> None:
        """No online adaptation: the floor stays the floor."""

    def predict_proba(self, x: Vector) -> float:
        return self.base_rate

    def to_dict(self) -> dict:
        return {"model": self.name, "base_rate": self.base_rate}


class ThresholdHeuristicModel:
    """Alert when >= ``min_signals`` warning features sit ``z_alert``
    standard deviations above their healthy baseline.

    The healthy baseline is the per-feature median/MAD over the
    *negative* training rows — robust statistics, because rows just
    outside the label horizon are already slightly degraded and would
    otherwise stretch a mean/std baseline.  The pseudo-probability is
    the alerting fraction of warning features, so a 0.5 threshold
    means "half the early-warning signals fired".
    """

    name = "heuristic"

    def __init__(self, z_alert: float = 3.0, min_signals: int = 2):
        if z_alert <= 0:
            raise ValueError("z_alert must be > 0")
        if min_signals < 1:
            raise ValueError("min_signals must be >= 1")
        self.z_alert = z_alert
        self.min_signals = min_signals
        self._indices = tuple(FEATURE_NAMES.index(n)
                              for n in _WARNING_FEATURES)
        self._baseline: Dict[int, Tuple[float, float]] = {}

    def fit(self, x: Sequence[Vector], y: Sequence[int]) -> None:
        healthy = [row for row, label in zip(x, y) if label == 0]
        if not healthy:
            healthy = list(x)
        self._baseline = {
            i: _median_mad([row[i] for row in healthy])
            for i in self._indices}

    def partial_fit(self, x: Vector, label: int) -> None:
        """The rulebook does not learn online."""

    def predict_proba(self, x: Vector) -> float:
        if not self._baseline:
            return 0.0
        firing = 0
        culprit_signal = False
        for i in self._indices:
            center, spread = self._baseline[i]
            if (x[i] - center) / spread >= self.z_alert:
                firing += 1
                if FEATURE_NAMES[i] == "exclusive_ratio":
                    culprit_signal = True
        # Exclusive latency is the necessary condition: queues and
        # block time also rise at the cascade's *victims*, but only
        # the culprit's own exclusive time inflates.
        if not culprit_signal or firing < self.min_signals:
            return 0.0
        return firing / len(self._indices)

    def to_dict(self) -> dict:
        return {
            "model": self.name,
            "z_alert": self.z_alert,
            "min_signals": self.min_signals,
            "baseline": {FEATURE_NAMES[i]: list(self._baseline[i])
                         for i in self._indices if i in self._baseline},
        }


class OnlineLogisticModel:
    """SGD logistic regression, seeded and standardized.

    ``fit`` makes ``epochs`` passes over the training set in a
    ``random.Random(seed)``-shuffled order; ``partial_fit`` keeps
    learning one example at a time during inference (the *online*
    half of the design).  Standardization statistics are frozen at
    ``fit`` time so online updates cannot drift the input scale.
    Class imbalance is handled by weighting positive examples by the
    negative/positive ratio — violation ticks are rare by
    construction."""

    name = "logistic"

    def __init__(self, lr: float = 0.05, l2: float = 1e-4,
                 epochs: int = 12, seed: int = 0):
        if lr <= 0:
            raise ValueError("lr must be > 0")
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        self.lr = lr
        self.l2 = l2
        self.epochs = epochs
        self.seed = seed
        self.weights: List[float] = [0.0] * len(FEATURE_NAMES)
        self.bias = 0.0
        self._means: List[float] = [0.0] * len(FEATURE_NAMES)
        self._stds: List[float] = [1.0] * len(FEATURE_NAMES)
        self._pos_weight = 1.0

    def _standardize(self, x: Vector) -> List[float]:
        return [(v - m) / s
                for v, m, s in zip(x, self._means, self._stds)]

    def _raw_proba(self, z: Sequence[float]) -> float:
        logit = self.bias + sum(w * v for w, v in zip(self.weights, z))
        # Clamp to keep exp() in range; probabilities saturate anyway.
        logit = max(-30.0, min(30.0, logit))
        return 1.0 / (1.0 + math.exp(-logit))

    def _step(self, z: Sequence[float], label: int) -> None:
        error = self._raw_proba(z) - label
        scale = self._pos_weight if label == 1 else 1.0
        for i, v in enumerate(z):
            grad = error * v * scale + self.l2 * self.weights[i]
            self.weights[i] -= self.lr * grad
        self.bias -= self.lr * error * scale

    def fit(self, x: Sequence[Vector], y: Sequence[int]) -> None:
        if not x:
            return
        columns = list(zip(*x))
        stats = [_mean_std(col) for col in columns]
        self._means = [m for m, _ in stats]
        self._stds = [s for _, s in stats]
        positives = sum(y)
        negatives = len(y) - positives
        self._pos_weight = (negatives / positives
                            if positives > 0 else 1.0)
        standardized = [self._standardize(row) for row in x]
        order = list(range(len(x)))
        rng = random.Random(self.seed)
        for _ in range(self.epochs):
            rng.shuffle(order)
            for i in order:
                self._step(standardized[i], y[i])

    def partial_fit(self, x: Vector, label: int) -> None:
        self._step(self._standardize(x), label)

    def predict_proba(self, x: Vector) -> float:
        return self._raw_proba(self._standardize(x))

    def to_dict(self) -> dict:
        """Byte-stable weight export (`repr` floats, fixed order)."""
        return {
            "model": self.name,
            "seed": self.seed,
            "bias": repr(self.bias),
            "weights": {name: repr(w) for name, w
                        in zip(FEATURE_NAMES, self.weights)},
            "means": [repr(m) for m in self._means],
            "stds": [repr(s) for s in self._stds],
        }


def build_model(kind: str, seed: int = 0):
    """Model factory keyed by CLI name."""
    if kind == "majority":
        return MajorityClassModel()
    if kind == "heuristic":
        return ThresholdHeuristicModel()
    if kind == "logistic":
        return OnlineLogisticModel(seed=seed)
    raise ValueError(f"unknown model kind {kind!r}")
