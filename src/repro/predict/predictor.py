"""The in-sim online predictor.

An :class:`OnlinePredictor` runs a fitted model against the
:class:`~repro.predict.features.FeatureTracker`'s freshest rows at
every scrape tick, inside the scraper's turn (listener ordering is
registration order, so register the tracker first, then the
predictor).  When a tier's probability crosses the alert threshold it
emits a :class:`PredictionEvent` naming the predicted culprit, and —
when a mitigator is wired in — hands it over for proactive action.

A per-tier **cooldown** de-bounces the alert stream: one episode
should produce one actionable event per tier, not one per scrape.
The first ``min_history`` ticks are warm-up — slope features need a
filled window before they mean anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["PredictionEvent", "OnlinePredictor"]


@dataclass(frozen=True)
class PredictionEvent:
    """One predicted-violation alert."""

    time: float
    service: str
    probability: float

    def to_dict(self) -> dict:
        return {"time": self.time, "service": self.service,
                "probability": self.probability}


class OnlinePredictor:
    """Scores every watched tier on every scrape tick."""

    def __init__(self, tracker, model, threshold: float = 0.5,
                 cooldown: float = 5.0, min_history: int = 4,
                 mitigator=None):
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.tracker = tracker
        self.model = model
        self.threshold = threshold
        self.cooldown = cooldown
        self.min_history = min_history
        self.mitigator = mitigator
        self.events: List[PredictionEvent] = []
        self._last_alert: Dict[str, float] = {}

    def attach(self) -> "OnlinePredictor":
        """Register after the tracker on the registry's scrape cycle."""
        self.tracker.registry.add_scrape_listener(self.on_scrape)
        return self

    def on_scrape(self, now: float) -> None:
        """Score the tick the tracker just appended."""
        if self.tracker.ticks < self.min_history:
            return
        for service in self.tracker.services:
            row = self.tracker.latest(service)
            if row is None:
                continue
            probability = self.model.predict_proba(row.values)
            if probability < self.threshold:
                continue
            last = self._last_alert.get(service)
            if last is not None and now - last < self.cooldown:
                continue
            self._last_alert[service] = now
            event = PredictionEvent(time=now, service=service,
                                    probability=probability)
            self.events.append(event)
            if self.mitigator is not None:
                self.mitigator.on_prediction(event)

    def export_lines(self) -> List[str]:
        """Byte-stable text form of the event log."""
        return [f"{e.time!r}\t{e.service}\t{e.probability!r}"
                for e in self.events]

    def first_alert(self, service: Optional[str] = None,
                    ) -> Optional[float]:
        """Time of the first alert (for one tier, or any)."""
        for event in self.events:
            if service is None or event.service == service:
                return event.time
        return None
