"""Training labels from QoS-attribution episodes.

The ground truth a violation predictor trains against is exactly what
the attribution engine reports after the fact: episode boundaries and
the top culprit tier.  :func:`label_rows` turns a feature matrix plus
a list of episodes into supervised examples at a **lead-time
horizon**: a ``(tick, service)`` row is positive iff an episode
*starts* within ``(t, t + horizon]`` and ``service`` is that
episode's attributed culprit.  Predicting the violation while it is
already underway is detection, not prediction — ticks inside an
episode are dropped from training entirely.

Episodes come either from a live
:class:`~repro.obs.qos.QoSReport` or from the machine-readable form
``repro report qos --json`` writes (the ``to_dict`` contract), so a
label pipeline can train from archived run artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .features import FeatureRow

__all__ = [
    "EpisodeLabel",
    "LabeledExample",
    "episodes_for_labeling",
    "label_rows",
    "split_xy",
]


@dataclass(frozen=True)
class EpisodeLabel:
    """The slice of an episode the label pipeline needs."""

    start: float
    end: float
    culprit: Optional[str]


@dataclass(frozen=True)
class LabeledExample:
    """One supervised example: a feature row and its 0/1 label."""

    row: FeatureRow
    label: int


def episodes_for_labeling(report) -> List[EpisodeLabel]:
    """Extract ``EpisodeLabel``\\ s from a QoSReport or its dict form.

    Accepts a live :class:`~repro.obs.qos.QoSReport` or the parsed
    JSON of ``repro report qos --json`` (``report["episodes"]`` rows
    with ``start``/``end``/``top_culprit``)."""
    episodes = []
    raw = report["episodes"] if isinstance(report, dict) \
        else report.episodes
    for ep in raw:
        if isinstance(ep, dict):
            episodes.append(EpisodeLabel(
                start=float(ep["start"]), end=float(ep["end"]),
                culprit=ep.get("top_culprit")))
        else:
            top = ep.top_culprit
            episodes.append(EpisodeLabel(
                start=ep.start, end=ep.end,
                culprit=top.service if top else None))
    return episodes


def label_rows(rows: Sequence[FeatureRow],
               episodes: Sequence[EpisodeLabel],
               horizon: float,
               ) -> List[LabeledExample]:
    """Label a feature matrix against attribution episodes.

    For each row at time ``t`` for tier ``s``:

    * **dropped** when ``t`` falls inside any episode (the violation
      is no longer predictable — it is happening);
    * **positive** when some episode starts within ``(t, t + horizon]``
      and ``s`` is its culprit;
    * **negative** otherwise.

    Rows keep their input order, so same-seed labeling is
    byte-stable."""
    if horizon <= 0:
        raise ValueError("horizon must be > 0")
    examples: List[LabeledExample] = []
    for row in rows:
        t = row.time
        inside = False
        positive = False
        for ep in episodes:
            if ep.start <= t < ep.end:
                inside = True
                break
            if t < ep.start <= t + horizon \
                    and ep.culprit == row.service:
                positive = True
        if inside:
            continue
        examples.append(LabeledExample(row=row,
                                       label=1 if positive else 0))
    return examples


def split_xy(examples: Sequence[LabeledExample],
             ) -> Tuple[List[Tuple[float, ...]], List[int]]:
    """Feature vectors and labels as parallel lists (model input)."""
    return ([ex.row.values for ex in examples],
            [ex.label for ex in examples])
