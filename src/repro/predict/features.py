"""Sliding-window feature extraction on the scrape cadence.

The predictor sees exactly what a production early-warning system
would: the scraped metric series and the trace stream, nothing else.
A :class:`FeatureTracker` registers as a scrape listener on the
:class:`~repro.obs.registry.MetricsRegistry`; at every scrape it
consumes the traces collected since the previous tick, reads the
freshly sampled gauges, and appends one :class:`FeatureRow` per
watched tier.

The feature set encodes the early symptoms the Sec. 7 walkthroughs
diagnose *post hoc*:

* ``exclusive_rate`` — the tier's exclusive span seconds (downstream
  wait removed) completed per sim second this tick: the tier itself
  holding latency, the attribution engine's primary evidence;
* ``exclusive_ratio`` / ``queue_ratio`` — the same signals divided by
  the tier's *own* trailing-window mean: scale-free, so a model
  trained on one tier transfers to tiers whose absolute numbers
  differ by orders of magnitude;
* ``exclusive_share`` — the tier's fraction of the whole fleet's
  exclusive time this tick, the attribution engine's primary culprit
  evidence: block time and queues rise at a cascade's *victims* too,
  but only the culprit's share of held latency climbs toward 1;
* ``block_share`` — fraction of the tier's span time spent blocked on
  connections/worker slots (the HTTP/1 head-of-line signal that
  precedes a Fig. 17 backpressure collapse);
* ``queue_depth`` / ``queue_slope`` — worker-queue depth and its
  least-squares slope over the sliding window: queues integrate
  overload, so their *slope* goes positive before the tail does;
* ``cpu_util`` — scraped busy fraction;
* ``breaker_open_frac`` — fraction of breaker edges into the tier
  currently open or half-open;
* ``cache_hit_ratio`` — observed hit ratio (1.0 for cacheless tiers:
  "no misses");
* ``arrival_rate`` / ``arrival_trend`` — offered load per second and
  its windowed slope (cluster-wide, shared across tiers): ramps in
  demand predict saturation before any per-tier symptom.

All windows are deques of fixed length over scrape ticks; all
iteration orders are fixed at construction.  Two same-seed runs
produce byte-identical feature matrices.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

__all__ = ["FEATURE_NAMES", "FeatureRow", "FeatureTracker", "slope"]

#: Feature vector layout, fixed across training and inference.
FEATURE_NAMES: Tuple[str, ...] = (
    "exclusive_rate",
    "exclusive_ratio",
    "exclusive_share",
    "block_share",
    "queue_depth",
    "queue_ratio",
    "queue_slope",
    "cpu_util",
    "breaker_open_frac",
    "cache_hit_ratio",
    "arrival_rate",
    "arrival_trend",
)

#: Codes >= this on ``repro_breaker_state`` count as not-closed
#: (half-open probes included: the edge already judged the tier sick).
_BREAKER_NOT_CLOSED = 1.0


def slope(points: Sequence[Tuple[float, float]]) -> float:
    """Least-squares slope of ``(t, v)`` points (0.0 under 2 points).

    Plain closed-form regression: deterministic, allocation-free, and
    robust to the uneven spacing a paused scraper can produce."""
    n = len(points)
    if n < 2:
        return 0.0
    mean_t = sum(t for t, _ in points) / n
    mean_v = sum(v for _, v in points) / n
    num = sum((t - mean_t) * (v - mean_v) for t, v in points)
    den = sum((t - mean_t) ** 2 for t, _ in points)
    if den <= 0.0:
        return 0.0
    return num / den


@dataclass(frozen=True)
class FeatureRow:
    """One tier's feature vector at one scrape tick."""

    time: float
    service: str
    values: Tuple[float, ...]

    def to_dict(self) -> dict:
        row = {"time": self.time, "service": self.service}
        for name, value in zip(FEATURE_NAMES, self.values):
            row[name] = value
        return row


class FeatureTracker:
    """Builds the feature matrix incrementally, one scrape at a time.

    Attach with :meth:`attach`; the tracker then runs inside the
    scraper's turn (see ``MetricsRegistry.add_scrape_listener``), so
    it never races other processes at the same timestamp.  ``window``
    is the sliding-window length in scrape ticks for slope features.
    """

    def __init__(self, registry, collector, services: Sequence[str],
                 window: int = 8):
        if window < 2:
            raise ValueError("window must be >= 2 scrape ticks")
        self.registry = registry
        self.collector = collector
        #: Watched tiers, order fixed at construction.
        self.services: List[str] = list(services)
        self.window = window
        self.rows: List[FeatureRow] = []
        self.ticks = 0
        self._seen_traces = 0
        self._last_tick: Optional[float] = None
        self._last_offered = 0.0
        self._queue_hist: Dict[str, Deque[Tuple[float, float]]] = {
            s: deque(maxlen=window) for s in self.services}
        self._excl_hist: Dict[str, Deque[float]] = {
            s: deque(maxlen=window) for s in self.services}
        self._arrival_hist: Deque[Tuple[float, float]] = deque(
            maxlen=window)
        self._latest: Dict[str, FeatureRow] = {}

    def attach(self) -> "FeatureTracker":
        """Register on the registry's scrape cycle; returns self."""
        self.registry.add_scrape_listener(self.on_scrape)
        return self

    # -- per-tick extraction -------------------------------------------
    def _gauge(self, name: str, service: str) -> float:
        try:
            return self.registry.value(name, service=service)
        except KeyError:
            return 0.0

    def _consume_traces(self) -> Tuple[Dict[str, float],
                                       Dict[str, float],
                                       Dict[str, float]]:
        """Per-service exclusive/block/span seconds of new traces.

        Block time on a non-leaf span is re-charged to its downstream
        tiers, the same cascade-aware accounting the attribution
        engine uses: a front tier whose workers sit blocked on a slow
        backend must not look like it is holding latency itself, or
        the predictor names the victim instead of the culprit."""
        exclusive: Dict[str, float] = {}
        block: Dict[str, float] = {}
        span_time: Dict[str, float] = {}
        fresh, self._seen_traces = self.collector.traces_since(
            self._seen_traces)
        for trace in fresh:
            for span in trace.root.walk():
                excl = span.exclusive_time()
                blk = span.block_time
                if span.children and blk > 0:
                    excl = max(0.0, excl - blk)
                    child_total = sum(c.duration
                                      for c in span.children)
                    for child in span.children:
                        share = (blk * child.duration / child_total
                                 if child_total > 0
                                 else blk / len(span.children))
                        exclusive[child.service] = (
                            exclusive.get(child.service, 0.0) + share)
                exclusive[span.service] = (
                    exclusive.get(span.service, 0.0) + excl)
                block[span.service] = (block.get(span.service, 0.0)
                                       + blk)
                span_time[span.service] = (
                    span_time.get(span.service, 0.0) + span.duration)
        return exclusive, block, span_time

    def _breaker_open_frac(self, service: str) -> float:
        family = None
        for candidate in self.registry.families():
            if candidate.name == "repro_breaker_state":
                family = candidate
                break
        if family is None:
            return 0.0
        total = 0
        not_closed = 0
        for child in family.children.values():
            labels = dict(child.labels)
            if labels.get("callee") != service:
                continue
            total += 1
            if child.value >= _BREAKER_NOT_CLOSED:
                not_closed += 1
        if total == 0:
            return 0.0
        return not_closed / total

    def on_scrape(self, now: float) -> None:
        """Append one FeatureRow per watched tier for this tick."""
        if self._last_tick is None:
            dt = max(self.registry.scrape_period, 1e-9)
        else:
            dt = max(now - self._last_tick, 1e-9)
        exclusive, block, span_time = self._consume_traces()

        try:
            offered = self.registry.value("repro_offered_requests_total")
        except KeyError:
            offered = self._last_offered
        arrival_rate = max(0.0, offered - self._last_offered) / dt
        self._arrival_hist.append((now, arrival_rate))
        arrival_trend = slope(list(self._arrival_hist))
        self._last_offered = offered
        self._last_tick = now
        self.ticks += 1
        total_exclusive = sum(exclusive.values())

        for service in self.services:
            queue_depth = (
                self._gauge("repro_worker_queue_depth", service)
                + self._gauge("repro_outstanding_requests", service))
            exclusive_rate = exclusive.get(service, 0.0) / dt
            # Ratios divide by the tier's own trailing mean (before
            # this tick), making the signal scale-free across tiers.
            queue_hist = self._queue_hist[service]
            excl_hist = self._excl_hist[service]
            queue_ratio = queue_depth / max(
                sum(v for _, v in queue_hist) / len(queue_hist)
                if queue_hist else queue_depth, 1.0)
            excl_ratio = exclusive_rate / max(
                sum(excl_hist) / len(excl_hist)
                if excl_hist else exclusive_rate, 1e-3)
            queue_hist.append((now, queue_depth))
            excl_hist.append(exclusive_rate)
            spent = span_time.get(service, 0.0)
            try:
                hit_ratio = self.registry.value(
                    "repro_cache_hit_ratio", service=service)
            except KeyError:
                hit_ratio = 1.0
            row = FeatureRow(
                time=now,
                service=service,
                values=(
                    exclusive_rate,
                    excl_ratio,
                    (exclusive.get(service, 0.0) / total_exclusive
                     if total_exclusive > 0.0 else 0.0),
                    (block.get(service, 0.0) / spent
                     if spent > 0.0 else 0.0),
                    queue_depth,
                    queue_ratio,
                    slope(list(queue_hist)),
                    self._gauge("repro_cpu_utilization", service),
                    self._breaker_open_frac(service),
                    hit_ratio,
                    arrival_rate,
                    arrival_trend,
                ),
            )
            self.rows.append(row)
            self._latest[service] = row

    # -- access ---------------------------------------------------------
    def latest(self, service: str) -> Optional[FeatureRow]:
        """The most recent row for one tier (None before first tick)."""
        return self._latest.get(service)

    def matrix(self) -> List[FeatureRow]:
        """All rows, in (tick, service) order."""
        return list(self.rows)

    def export_lines(self) -> List[str]:
        """Byte-stable text form of the matrix (determinism tests)."""
        header = "time\tservice\t" + "\t".join(FEATURE_NAMES)
        lines = [header]
        for row in self.rows:
            values = "\t".join(repr(v) for v in row.values)
            lines.append(f"{row.time!r}\t{row.service}\t{values}")
        return lines
