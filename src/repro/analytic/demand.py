"""Per-service demand extraction from an application's call trees.

For the analytic queueing model we need, for each service, the expected
number of visits per end-to-end request and the CPU demand per request,
split into application work and network (TCP) work.  Network demand has
two parts: a tier pays kernel CPU for the messages it *receives and
answers* (its own RPC), and for the messages it *sends* as a caller of
its downstream tiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..net.protocols import ProtocolCosts, costs_for
from ..services.app import Application
from ..services.calltree import CallNode

__all__ = ["ServiceDemand", "compute_demands"]


@dataclass
class ServiceDemand:
    """Expected per-end-to-end-request demand on one service."""

    visits: float = 0.0
    app_work: float = 0.0
    net_work: float = 0.0
    #: CV of the service's compute time (for the G in M/G/c).
    work_cv: float = 0.5

    @property
    def total_work(self) -> float:
        """Application plus network CPU seconds per request."""
        return self.app_work + self.net_work

    def service_time_mean(self) -> float:
        """Mean CPU demand per visit."""
        if self.visits <= 0:
            return 0.0
        return self.total_work / self.visits


def _walk(app: Application, node: CallNode, weight: float,
          costs: ProtocolCosts,
          demands: Dict[str, ServiceDemand]) -> None:
    me = demands[node.service]
    me.visits += weight
    me.app_work += (weight * app.services[node.service].work_mean
                    * node.work_scale)
    # Server side of my own RPC: receive the request, send the response.
    me.net_work += weight * (costs.recv_cost(node.request_kb)
                             + costs.send_cost(node.response_kb))
    for group in node.groups:
        for child in group:
            # Caller side of each downstream RPC.
            me.net_work += weight * (costs.send_cost(child.request_kb)
                                     + costs.recv_cost(child.response_kb))
            _walk(app, child, weight, costs, demands)


def compute_demands(app: Application,
                    mix: Optional[Mapping[str, float]] = None,
                    costs: Optional[ProtocolCosts] = None
                    ) -> Dict[str, ServiceDemand]:
    """Service → :class:`ServiceDemand` under the given operation mix."""
    mix = dict(mix) if mix is not None else app.default_mix()
    costs = costs or costs_for(app.protocol)
    demands: Dict[str, ServiceDemand] = {
        name: ServiceDemand(work_cv=svc.work_cv)
        for name, svc in app.services.items()
    }
    for op_name, probability in mix.items():
        if probability < 0:
            raise ValueError("mix probabilities must be >= 0")
        if probability == 0:
            continue
        _walk(app, app.operations[op_name].root, probability, costs,
              demands)
    return demands
