"""End-to-end latency budgeting.

Section 4's headline: "the latency requirements of each individual tier
are much stricter than for typical applications".  This module makes
that concrete: given an application, a deployment configuration, and an
end-to-end QoS target, it decomposes the target into per-tier latency
*budgets* along the call trees and reports each tier's budget, its
predicted consumption at a given load, and the slack — the tooling an
operator would use to find which tier to optimize first.

Budgeting rule: the end-to-end target is apportioned to tiers in
proportion to their predicted *tail* (p99) contribution on the
mix-weighted critical path (sequential nodes add; parallel groups are
charged to their slowest member) — tail-aware apportionment, so
high-variance tiers earn proportionally wider budgets.  A tier whose
p99 response exceeds its per-visit budget is flagged as a binding
constraint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..services.app import Application
from ..services.calltree import CallNode
from .model import AnalyticModel

__all__ = ["TierBudget", "latency_budgets", "binding_constraints"]


@dataclass(frozen=True)
class TierBudget:
    """One tier's slice of the end-to-end latency target."""

    service: str
    #: Expected visits per end-to-end request (mix-weighted).
    visits: float
    #: Mean contribution to end-to-end latency per request (seconds).
    contribution: float
    #: Share of the end-to-end target apportioned to this tier.
    budget: float
    #: Predicted per-visit p99 response at the evaluated load.
    p99_response: float
    #: budget/visits - p99_response; negative means the tier busts it.
    slack: float

    @property
    def violated(self) -> bool:
        return self.slack < 0.0


def _contributions(model: AnalyticModel, qps: float) -> Dict[str, float]:
    """Mean per-request latency contribution per tier along the
    mix-weighted critical path."""
    stations = model.stations(qps)
    out: Dict[str, float] = {service: 0.0 for service in
                             model.app.services}

    def node_tail(node: CallNode) -> float:
        tail = stations[node.service].response_tail(0.99)
        for group in node.groups:
            tail += max(node_tail(child) for child in group)
        return tail

    def charge(node: CallNode, weight: float) -> None:
        out[node.service] += weight * \
            stations[node.service].response_tail(0.99)
        for group in node.groups:
            for child in group:
                charge(child, weight)

    for op_name, probability in model.mix.items():
        charge(model.app.operations[op_name].root, probability)
    return out


def latency_budgets(app: Application, qps: float,
                    replicas=1,
                    cores=2,
                    qos_latency: Optional[float] = None,
                    mix: Optional[Mapping[str, float]] = None
                    ) -> List[TierBudget]:
    """Per-tier budgets for the end-to-end target at the given load."""
    if qps <= 0:
        raise ValueError("qps must be > 0")
    target = qos_latency if qos_latency is not None else app.qos_latency
    model = AnalyticModel(app, replicas=replicas, cores=cores, mix=mix)
    contributions = _contributions(model, qps)
    total = sum(contributions.values())
    if total <= 0:
        raise ValueError("no latency contributions at this load")
    stations = model.stations(qps)
    visits = {s: d.visits for s, d in model.demands.items()}
    budgets = []
    for service, contribution in contributions.items():
        share = contribution / total
        budget = share * target
        p99 = stations[service].response_tail(0.99)
        per_visit_budget = (budget / visits[service]
                            if visits[service] > 0 else budget)
        budgets.append(TierBudget(
            service=service,
            visits=visits[service],
            contribution=contribution,
            budget=budget,
            p99_response=p99,
            slack=per_visit_budget - p99,
        ))
    budgets.sort(key=lambda b: b.slack)
    return budgets


def binding_constraints(app: Application, qps: float,
                        **kwargs) -> List[str]:
    """Tiers whose predicted p99 busts their budget (tightest first)."""
    return [b.service for b in latency_budgets(app, qps, **kwargs)
            if b.violated]
