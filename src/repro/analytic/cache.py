"""LRU cache analysis: hit ratios under Zipf popularity.

The suite's applications front their MongoDB/MySQL stores with
memcached tiers, and the call trees encode each lookup's *miss ratio*
as the store node's ``work_scale``.  This module provides the
principled way to pick those numbers: Che's approximation (Che, Tung &
Wang 2002), the standard closed-form estimate of per-key and aggregate
LRU hit ratios given a key-popularity distribution and a cache size.

Che's approximation: an LRU cache of ``C`` objects has a *characteristic
time* ``T`` solving

    C = sum_k (1 - exp(-lambda_k * T))

and key ``k``'s hit ratio is ``1 - exp(-lambda_k * T)``.  It is
remarkably accurate for Zipf-like cloud workloads.
"""

from __future__ import annotations

import math
from typing import List, Sequence

__all__ = ["che_characteristic_time", "hit_ratios", "aggregate_hit_ratio",
           "zipf_weights", "cache_size_for_hit_ratio"]


def zipf_weights(n_keys: int, s: float) -> List[float]:
    """Normalized Zipf popularity weights for ``n_keys`` keys."""
    if n_keys < 1:
        raise ValueError("n_keys must be >= 1")
    if s < 0:
        raise ValueError("s must be >= 0")
    raw = [1.0 / (k ** s) for k in range(1, n_keys + 1)]
    total = sum(raw)
    return [w / total for w in raw]


def che_characteristic_time(weights: Sequence[float],
                            cache_size: int,
                            tolerance: float = 1e-9) -> float:
    """Solve Che's fixed point for the characteristic time ``T``.

    ``weights`` are per-key request probabilities (request rate factors
    cancel); ``cache_size`` is in objects.  Bisection on T: the
    occupancy sum is monotone in T."""
    n = len(weights)
    if cache_size < 1:
        raise ValueError("cache_size must be >= 1")
    if cache_size >= n:
        return math.inf  # everything fits; all hits after warm-up

    def occupancy(t: float) -> float:
        return sum(1.0 - math.exp(-w * t) for w in weights)

    lo, hi = 0.0, 1.0
    while occupancy(hi) < cache_size:
        hi *= 2.0
        if hi > 1e18:  # pragma: no cover - degenerate weights
            return hi
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if occupancy(mid) < cache_size:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tolerance * max(1.0, hi):
            break
    return (lo + hi) / 2.0


def hit_ratios(weights: Sequence[float], cache_size: int) -> List[float]:
    """Per-key LRU hit ratios under Che's approximation."""
    t = che_characteristic_time(weights, cache_size)
    if math.isinf(t):
        return [1.0] * len(weights)
    return [1.0 - math.exp(-w * t) for w in weights]


def aggregate_hit_ratio(weights: Sequence[float],
                        cache_size: int) -> float:
    """Request-weighted aggregate hit ratio (what the cache tier sees)."""
    ratios = hit_ratios(weights, cache_size)
    return sum(w * h for w, h in zip(weights, ratios))


def cache_size_for_hit_ratio(weights: Sequence[float],
                             target: float) -> int:
    """Smallest cache (in objects) achieving the target hit ratio.

    The inverse design question: how much memcached does a tier need
    for, say, a 70 % hit ratio?  Monotone, so bisection on size."""
    if not 0.0 < target < 1.0:
        raise ValueError("target must be in (0,1)")
    n = len(weights)
    lo, hi = 1, n
    if aggregate_hit_ratio(weights, lo) >= target:
        return lo
    while lo < hi:
        mid = (lo + hi) // 2
        if aggregate_hit_ratio(weights, mid) >= target:
            hi = mid
        else:
            lo = mid + 1
    return lo
