"""Analytic queueing-network backend for fast parameter sweeps."""

from .cache import (
    aggregate_hit_ratio,
    cache_size_for_hit_ratio,
    che_characteristic_time,
    hit_ratios,
    zipf_weights,
)
from .budgets import TierBudget, binding_constraints, latency_budgets
from .demand import ServiceDemand, compute_demands
from .model import AnalyticModel, clark_max
from .queueing import (
    StationResult,
    analyze_station,
    erlang_c,
    mgc_wait_time,
    tail_from_moments,
)

__all__ = [
    "AnalyticModel",
    "aggregate_hit_ratio",
    "cache_size_for_hit_ratio",
    "che_characteristic_time",
    "hit_ratios",
    "zipf_weights",
    "ServiceDemand",
    "TierBudget",
    "binding_constraints",
    "latency_budgets",
    "StationResult",
    "analyze_station",
    "clark_max",
    "compute_demands",
    "erlang_c",
    "mgc_wait_time",
    "tail_from_moments",
]
