"""End-to-end analytic latency model.

Composes per-tier M/G/c stations along an application's call trees to
estimate end-to-end latency moments and tails without simulation.  Used
for the wide parameter sweeps (load x frequency grids, platform
comparisons, cluster-size sweeps) where DES would be needlessly slow;
the test suite cross-validates it against the simulator on small
configurations.

Composition rules (documented approximations):

* one visit per call node at its tier's station, with the tier's mean
  demand per visit (application + amortized TCP work);
* sequential calls add means and variances;
* parallel calls combine via Clark's (1961) Gaussian-max approximation;
* each RPC edge adds two wire latencies (request + response);
* the end-to-end quantile comes from lognormal moment matching.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Tuple, Union

from ..arch.platform import XEON, Platform
from ..services.app import Application
from ..services.calltree import CallNode
from .demand import ServiceDemand, compute_demands
from .queueing import StationResult, analyze_station, tail_from_moments

__all__ = ["AnalyticModel"]


def _phi(x: float) -> float:
    """Standard normal pdf."""
    return math.exp(-x * x / 2.0) / math.sqrt(2.0 * math.pi)


def _Phi(x: float) -> float:
    """Standard normal cdf."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


def clark_max(mean_a: float, var_a: float,
              mean_b: float, var_b: float) -> Tuple[float, float]:
    """Moments of max(A, B) for independent Gaussians (Clark 1961)."""
    a2 = var_a + var_b
    if a2 <= 1e-24:
        m = max(mean_a, mean_b)
        return m, max(var_a, var_b)
    a = math.sqrt(a2)
    alpha = (mean_a - mean_b) / a
    mean = (mean_a * _Phi(alpha) + mean_b * _Phi(-alpha) + a * _phi(alpha))
    second = ((mean_a ** 2 + var_a) * _Phi(alpha)
              + (mean_b ** 2 + var_b) * _Phi(-alpha)
              + (mean_a + mean_b) * a * _phi(alpha))
    var = max(0.0, second - mean * mean)
    return mean, var


class AnalyticModel:
    """Queueing-network estimate of one deployment configuration."""

    def __init__(self, app: Application,
                 replicas: Union[int, Mapping[str, int]] = 1,
                 cores: Union[int, Mapping[str, int]] = 2,
                 platform: Platform = XEON,
                 freq_ghz: Optional[float] = None,
                 mix: Optional[Mapping[str, float]] = None,
                 wire_latency: float = 25e-6,
                 client_latency: float = 100e-6,
                 slow_factor: float = 1.0,
                 service_speed: Optional[Mapping[str, float]] = None):
        self.app = app
        self.platform = platform
        self.freq_ghz = freq_ghz if freq_ghz is not None \
            else platform.nominal_freq_ghz
        if not (platform.min_freq_ghz <= self.freq_ghz
                <= platform.nominal_freq_ghz):
            raise ValueError(
                f"{self.freq_ghz} GHz outside platform range")
        if slow_factor <= 0:
            raise ValueError("slow_factor must be > 0")
        self.mix = dict(mix) if mix is not None else app.default_mix()
        self.wire_latency = wire_latency
        self.client_latency = client_latency
        self.slow_factor = slow_factor
        self.demands: Dict[str, ServiceDemand] = compute_demands(
            app, mix=self.mix)
        self._replicas = replicas
        self._cores = cores
        #: Per-service absolute core-speed overrides (vs. the nominal
        #: Xeon core) for heterogeneous placements, e.g. Swarm tiers
        #: pinned to drone SoCs.
        self.service_speed = dict(service_speed or {})

    # -- configuration helpers ---------------------------------------------
    def replicas_of(self, service: str) -> int:
        if isinstance(self._replicas, int):
            return self._replicas
        return self._replicas.get(service, 1)

    def cores_of(self, service: str) -> int:
        if isinstance(self._cores, int):
            return self._cores
        return self._cores.get(service, 2)

    def _speed(self) -> float:
        return (self.platform.single_thread_factor
                * (self.freq_ghz / XEON.nominal_freq_ghz)
                * self.slow_factor)

    def service_time(self, service: str) -> float:
        """Mean wall-clock demand per visit on this hardware."""
        demand = self.demands[service]
        nominal = demand.service_time_mean()
        beta = self.app.services[service].freq_sensitivity
        speed = self.service_speed.get(service, self._speed())
        return nominal * (beta / speed + (1.0 - beta))

    def zero_load_time(self, service: str,
                       work_scale: float = 1.0) -> float:
        """Best-case wall-clock of one visit at ``work_scale``: pure
        application compute on this hardware with zero queueing and no
        network work — the sound lower bound the static deadline
        checks (DLINE) build their critical-path floor from."""
        svc = self.app.services[service]
        nominal = svc.work_mean * work_scale
        beta = svc.freq_sensitivity
        speed = self.service_speed.get(service, self._speed())
        return nominal * (beta / speed + (1.0 - beta))

    # -- per-tier analysis -----------------------------------------------
    def stations(self, qps: float) -> Dict[str, StationResult]:
        """Service → M/G/c station result at the offered load."""
        if qps <= 0:
            raise ValueError("qps must be > 0")
        results = {}
        for service, demand in self.demands.items():
            arrival = qps * demand.visits
            servers = self.replicas_of(service) * self.cores_of(service)
            results[service] = analyze_station(
                arrival, self.service_time(service), demand.work_cv,
                servers)
        return results

    def utilizations(self, qps: float) -> Dict[str, float]:
        """Service → utilization at the offered load."""
        return {s: r.utilization for s, r in self.stations(qps).items()}

    def bottleneck(self, qps: float) -> str:
        """The tier with the highest utilization."""
        utils = self.utilizations(qps)
        return max(utils, key=utils.get)

    def saturation_qps(self) -> float:
        """Load at which the first tier saturates (capacity bound)."""
        worst = math.inf
        for service, demand in self.demands.items():
            if demand.visits <= 0:
                continue
            per_visit = self.service_time(service)
            if per_visit <= 0:
                continue
            servers = self.replicas_of(service) * self.cores_of(service)
            worst = min(worst, servers / (demand.visits * per_visit))
        return worst

    # -- end-to-end composition --------------------------------------------
    def _node_moments(self, node: CallNode,
                      stations: Dict[str, StationResult],
                      edge_latency: float) -> Tuple[float, float]:
        station = stations[node.service]
        if station.saturated:
            return math.inf, math.inf
        mean = 2.0 * edge_latency + station.response_mean
        var = station.response_var
        for group in node.groups:
            members = [self._node_moments(child, stations,
                                          self.wire_latency)
                       for child in group]
            if any(math.isinf(m) for m, _ in members):
                return math.inf, math.inf
            g_mean, g_var = members[0]
            for m, v in members[1:]:
                g_mean, g_var = clark_max(g_mean, g_var, m, v)
            mean += g_mean
            var += g_var
        return mean, var

    def end_to_end_moments(self, qps: float,
                           operation: Optional[str] = None
                           ) -> Tuple[float, float]:
        """(mean, variance) of end-to-end latency at the offered load.

        With ``operation=None``, returns the mix-weighted moments."""
        stations = self.stations(qps)
        if operation is not None:
            root = self.app.operations[operation].root
            return self._node_moments(root, stations, self.client_latency)
        mean = var = 0.0
        for op_name, probability in self.mix.items():
            root = self.app.operations[op_name].root
            m, v = self._node_moments(root, stations, self.client_latency)
            if math.isinf(m):
                return math.inf, math.inf
            mean += probability * m
            var += probability * (v + m * m)
        var -= mean * mean
        return mean, max(0.0, var)

    def tail(self, qps: float, p: float = 0.99,
             operation: Optional[str] = None) -> float:
        """End-to-end latency quantile at the offered load."""
        mean, var = self.end_to_end_moments(qps, operation)
        if math.isinf(mean):
            return math.inf
        return tail_from_moments(mean, var, p)

    def max_qps_under(self, latency_bound: float, p: float = 0.99,
                      hi: Optional[float] = None,
                      tolerance: float = 0.01) -> float:
        """Largest load whose p-tail stays under ``latency_bound``.

        Binary search between 0 and the capacity bound."""
        if latency_bound <= 0:
            raise ValueError("latency_bound must be > 0")
        ceiling = hi if hi is not None else self.saturation_qps()
        if math.isinf(ceiling):
            raise ValueError("application has no finite capacity bound")
        lo_q, hi_q = 0.0, ceiling
        if self.tail(max(ceiling * 1e-6, 1e-9), p) > latency_bound:
            return 0.0
        for _ in range(60):
            mid = (lo_q + hi_q) / 2.0
            if mid <= 0:
                break
            if self.tail(mid, p) <= latency_bound:
                lo_q = mid
            else:
                hi_q = mid
            if hi_q - lo_q <= tolerance * ceiling:
                break
        return lo_q
