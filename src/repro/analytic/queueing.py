"""Multi-server queueing approximations.

The analytic backend treats each service tier as an M/G/c station:

* Erlang-C gives the exact M/M/c waiting probability;
* the Allen-Cunneen correction ``(Ca^2 + Cs^2)/2`` generalizes the wait
  to general service-time distributions;
* response-time *tails* come from lognormal moment matching — latency
  distributions in loaded queueing systems are right-skewed, and the
  lognormal fit reproduces the paper's qualitative p99-vs-load shape
  (flat, knee, explosion at saturation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["erlang_c", "mgc_wait_time", "tail_from_moments",
           "StationResult", "analyze_station"]


def erlang_c(servers: int, offered_load: float) -> float:
    """Probability an M/M/c arrival must wait (Erlang-C formula).

    ``offered_load`` is lambda/mu in Erlangs; requires
    ``offered_load < servers`` for stability."""
    if servers < 1:
        raise ValueError("servers must be >= 1")
    if offered_load < 0:
        raise ValueError("offered_load must be >= 0")
    if offered_load == 0:
        return 0.0
    if offered_load >= servers:
        return 1.0
    # Iterative Erlang-B then convert, numerically stable for large c.
    b = 1.0
    for k in range(1, servers + 1):
        b = offered_load * b / (k + offered_load * b)
    rho = offered_load / servers
    return b / (1.0 - rho + rho * b)


def mgc_wait_time(arrival_rate: float, service_mean: float,
                  service_cv: float, servers: int) -> float:
    """Mean queueing delay of an M/G/c station (Allen-Cunneen).

    Returns ``inf`` when the station is saturated."""
    if arrival_rate < 0 or service_mean < 0:
        raise ValueError("rates and times must be >= 0")
    if service_cv < 0:
        raise ValueError("service_cv must be >= 0")
    if arrival_rate == 0 or service_mean == 0:
        return 0.0
    offered = arrival_rate * service_mean
    if offered >= servers:
        return math.inf
    rho = offered / servers
    wait_mmc = (erlang_c(servers, offered) * service_mean
                / (servers * (1.0 - rho)))
    return wait_mmc * (1.0 + service_cv ** 2) / 2.0


def tail_from_moments(mean: float, variance: float, p: float) -> float:
    """Quantile ``p`` of a lognormal with the given first two moments."""
    if not 0.0 < p < 1.0:
        raise ValueError("p must be in (0,1)")
    if mean < 0 or variance < 0:
        raise ValueError("moments must be >= 0")
    if mean == 0:
        return 0.0
    if variance == 0:
        return mean
    sigma2 = math.log(1.0 + variance / (mean * mean))
    mu = math.log(mean) - sigma2 / 2.0
    z = _normal_quantile(p)
    return math.exp(mu + z * math.sqrt(sigma2))


def _normal_quantile(p: float) -> float:
    """Standard normal quantile (Acklam's rational approximation)."""
    # Coefficients for the central and tail regions.
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
                + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)
    if p <= 1 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
                + a[5]) * q / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3])
                                * r + b[4]) * r + 1)
    q = math.sqrt(-2 * math.log(1 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
             + c[5]) / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1)


@dataclass(frozen=True)
class StationResult:
    """Steady-state metrics of one service tier."""

    utilization: float
    wait_mean: float
    response_mean: float
    response_var: float

    @property
    def saturated(self) -> bool:
        return not math.isfinite(self.response_mean)

    def response_tail(self, p: float = 0.99) -> float:
        """Approximate response-time quantile."""
        if self.saturated:
            return math.inf
        return tail_from_moments(self.response_mean, self.response_var, p)


def analyze_station(arrival_rate: float, service_mean: float,
                    service_cv: float, servers: int) -> StationResult:
    """Full M/G/c analysis of one tier."""
    if service_mean == 0 or arrival_rate == 0:
        return StationResult(0.0, 0.0, service_mean,
                             (service_cv * service_mean) ** 2)
    utilization = min(1.0, arrival_rate * service_mean / servers)
    wait = mgc_wait_time(arrival_rate, service_mean, service_cv, servers)
    if not math.isfinite(wait):
        return StationResult(1.0, math.inf, math.inf, math.inf)
    response = wait + service_mean
    # Waiting time is approximately exponential when non-trivial, so its
    # variance is ~wait^2; service contributes (cv*s)^2 independently.
    variance = (service_cv * service_mean) ** 2 + wait ** 2
    return StationResult(utilization, wait, response, variance)
