"""Swarm coordination (Sec. 3.6, Fig. 8).

Coordinating a swarm of programmable drones doing image recognition and
obstacle avoidance, in two configurations:

* **Swarm-Edge** (Fig. 8a): computation on the drones.  On-drone
  services (controller, motion control, image recognition in node.js
  ``jimp``, obstacle avoidance in C++) run natively and talk over IPC
  (they land on the same drone "machine", which the network fabric
  short-circuits to IPC); the cloud only constructs routes and keeps
  persistent sensor stores, reached over HTTP to avoid Thrift's heavy
  dependencies on the edge.  21 unique microservices.

* **Swarm-Cloud** (Fig. 8b): the cloud runs motion control, image
  recognition (OpenCV/ardrone-autonomy), and obstacle avoidance for all
  drones; drones only ship sensor data.  Every action pays the
  cloud-edge wireless latency, but gets datacenter cores.  25 unique
  microservices.

This is the Fig. 9 experiment: cloud wins massively on the
compute-bound image-recognition path at load (the drone SoC saturates
almost immediately), while at low load the edge path's latency is far
lower because it skips the wifi round trip — and obstacle avoidance,
being latency-critical and cheap, belongs at the edge.
"""

from __future__ import annotations

from typing import Dict

from ..resilience.degrade import (
    CRIT_DEGRADABLE,
    CRIT_SHEDDABLE,
    DegradationPolicy,
)
from ..services.app import Application, Operation, Protocol
from ..services.calltree import CallNode, par, seq
from ..services.definition import ServiceDefinition, ServiceKind
from ..services.datastores import mongodb, nginx

__all__ = ["build_swarm_cloud", "build_swarm_edge", "SWARM_QOS"]

SWARM_QOS = 0.20


def _svc(name: str, language: str, work_us: float, cv: float = 0.5,
         kind: str = ServiceKind.LOGIC, beta: float = 0.95,
         **traits) -> ServiceDefinition:
    svc = ServiceDefinition(name=name, language=language, kind=kind,
                            work_mean=work_us * 1e-6, work_cv=cv,
                            freq_sensitivity=beta)
    return svc.with_traits(**traits) if traits else svc


def _sensor_services() -> Dict[str, ServiceDefinition]:
    """On-drone sensor pipelines, common to both configurations."""
    defs = [
        _svc("camera-image", "c", 120, kind=ServiceKind.EDGE),
        _svc("camera-video", "c", 300, kind=ServiceKind.EDGE),
        _svc("location", "c", 30, kind=ServiceKind.EDGE),
        _svc("speed", "c", 25, kind=ServiceKind.EDGE),
        _svc("luminosity", "c", 20, kind=ServiceKind.EDGE),
        _svc("orientation", "c", 25, kind=ServiceKind.EDGE),
        _svc("log", "node.js", 60, kind=ServiceKind.EDGE),
        # Auxiliary tiers (the paper mentions maintenance and service
        # discovery components, and the edge router relaying wifi).
        _svc("edge-router", "c", 35, kind=ServiceKind.EDGE,
             kernel_share=0.7, library_share=0.1),
        _svc("diagnostics", "node.js", 80, kind=ServiceKind.EDGE),
    ]
    return {svc.name: svc for svc in defs}


def _cloud_stores() -> Dict[str, ServiceDefinition]:
    """Persistent sensor-data stores kept in the cloud."""
    names = ["targetDB", "orientationDB", "luminosityDB", "speedDB",
             "locationDB", "videoDB", "imageDB", "stockImageDB"]
    return {name: mongodb(name) for name in names}


def _recognition(where: str) -> ServiceDefinition:
    """Image recognition: jimp (node.js) at the edge, OpenCV in cloud."""
    if where == "edge":
        return _svc("imageRecognition", "node.js", 12000, cv=0.5,
                    kind=ServiceKind.EDGE, memory_locality=0.3,
                    kernel_share=0.1, library_share=0.6)
    return _svc("imageRecognition", "c++", 8000, cv=0.5,
                kind=ServiceKind.ML, memory_locality=0.3)


def _avoidance(where: str) -> ServiceDefinition:
    """Obstacle avoidance in C++; cheap but latency-critical."""
    kind = ServiceKind.EDGE if where == "edge" else ServiceKind.LOGIC
    # Tight, latency-critical control loop: cheap on any core.
    return _svc("obstacleAvoidance", "c++", 250, cv=0.4, kind=kind,
                memory_locality=0.6)


def build_swarm_cloud() -> Application:
    """Swarm with cloud-side computation (Fig. 8b): 25 services."""
    services: Dict[str, ServiceDefinition] = {}
    services["nginx-lb"] = nginx("nginx-lb", work_mean=40e-6)
    services["cloud-frontend"] = _svc("cloud-frontend", "java", 150,
                                      kind=ServiceKind.FRONTEND)
    services["controller"] = _svc("controller", "javascript", 60)
    services["motionControl"] = _svc("motionControl", "javascript", 150)
    services["constructRoute"] = _svc("constructRoute", "java", 900)
    services["imageRecognition"] = _recognition("cloud")
    services["obstacleAvoidance"] = _avoidance("cloud")
    services["serviceDiscovery"] = _svc("serviceDiscovery", "go", 40)
    services.update(_cloud_stores())
    services.update(_sensor_services())

    zones = {name: "edge" for name in _sensor_services()}

    ops = {}
    ops["recognizeImage"] = Operation(
        name="recognizeImage", weight=40.0,
        root=CallNode(service="camera-image", request_kb=0.5,
                      response_kb=1.0, groups=seq(
            CallNode(service="controller", groups=seq(
                CallNode(service="nginx-lb", request_kb=80.0, groups=seq(
                    CallNode(service="cloud-frontend", request_kb=80.0,
                             groups=seq(
                        CallNode(service="imageRecognition",
                                 request_kb=80.0, groups=[
                            [CallNode(service="stockImageDB"),
                             CallNode(service="imageDB")],
                        ]))))))))))
    ops["avoidObstacle"] = Operation(
        name="avoidObstacle", weight=40.0,
        root=CallNode(service="location", groups=seq(
            CallNode(service="controller", groups=seq(
                CallNode(service="nginx-lb", request_kb=4.0, groups=seq(
                    CallNode(service="cloud-frontend", groups=seq(
                        CallNode(service="obstacleAvoidance", groups=[
                            [CallNode(service="locationDB",
                                      work_scale=0.3),
                             CallNode(service="speedDB",
                                      work_scale=0.3)],
                            [CallNode(service="motionControl")],
                        ]))))))))))
    ops["archiveVideo"] = Operation(
        name="archiveVideo", weight=5.0,
        root=CallNode(service="camera-video", request_kb=0.5, groups=seq(
            CallNode(service="edge-router", request_kb=256.0, groups=seq(
                CallNode(service="nginx-lb", request_kb=256.0, groups=seq(
                    CallNode(service="cloud-frontend", groups=seq(
                        CallNode(service="videoDB",
                                 request_kb=256.0))))))))))
    ops["constructRoute"] = Operation(
        name="constructRoute", weight=5.0,
        root=CallNode(service="nginx-lb", request_kb=2.0, groups=seq(
            CallNode(service="cloud-frontend", groups=seq(
                CallNode(service="serviceDiscovery"),
                CallNode(service="constructRoute", groups=[
                    [CallNode(service="targetDB"),
                     CallNode(service="locationDB")],
                ]))))))
    ops["uploadTelemetry"] = Operation(
        name="uploadTelemetry", weight=15.0,
        root=CallNode(service="speed", groups=seq(
            CallNode(service="orientation"),
            CallNode(service="luminosity"),
            CallNode(service="edge-router", request_kb=8.0, groups=seq(
                CallNode(service="nginx-lb", request_kb=8.0, groups=seq(
                    CallNode(service="cloud-frontend", groups=par(
                        CallNode(service="speedDB"),
                        CallNode(service="orientationDB"),
                        CallNode(service="luminosityDB"))))))),
            CallNode(service="diagnostics"),
            CallNode(service="log"))))

    # Criticality: the flight loops (obstacle avoidance, image
    # recognition) are critical; route planning degrades; archival
    # sheds first under overload.
    ops["constructRoute"].criticality = CRIT_DEGRADABLE
    ops["archiveVideo"].criticality = CRIT_SHEDDABLE
    ops["uploadTelemetry"].criticality = CRIT_DEGRADABLE

    degradation_policies = {
        "diagnostics": DegradationPolicy(
            service="diagnostics", optional=True, drop_level=1,
            fidelity_cost=0.05),
        "log": DegradationPolicy(
            service="log", optional=True, drop_level=2,
            fidelity_cost=0.05),
        # Skip the stock-image comparison under extreme brownout.
        "stockImageDB": DegradationPolicy(
            service="stockImageDB", optional=True, drop_level=1,
            fidelity_cost=0.15),
        # Telemetry stores fan out in parallel; speedDB (no policy)
        # always persists, the rest trim to one under brownout.
        "orientationDB": DegradationPolicy(
            service="orientationDB", fanout_keep=1, fanout_level=1,
            fidelity_cost=0.1),
        "luminosityDB": DegradationPolicy(
            service="luminosityDB", fanout_keep=1, fanout_level=1,
            fidelity_cost=0.1),
        # The actuation loop keeps running whatever the brownout level
        # says (DEG002 guards its placement).
        "obstacleAvoidance": DegradationPolicy(
            service="obstacleAvoidance", never_drop=True),
        "motionControl": DegradationPolicy(
            service="motionControl", never_drop=True),
    }

    return Application(
        name="swarm_cloud",
        services=services,
        operations=ops,
        protocol=Protocol.HTTP,
        qos_latency=SWARM_QOS,
        entry_service="nginx-lb",
        service_zones=zones,
        degradation_policies=degradation_policies,
        metadata={
            "paper_table1": {
                "total_locs": 11283,
                "protocol": "REST+RPC",
                "handwritten_rest_locs": 2610,
                "handwritten_rpc_locs": 4614,
                "autogen_rpc_locs": 21574,
                "unique_microservices": 25,
                "language_share": {
                    "c": 0.36, "java": 0.19, "javascript": 0.16,
                    "node.js": 0.14, "c++": 0.13, "python": 0.02,
                },
            },
        },
    )


def build_swarm_edge() -> Application:
    """Swarm with on-drone computation (Fig. 8a): 21 services."""
    services: Dict[str, ServiceDefinition] = {}
    services["nginx-lb"] = nginx("nginx-lb", work_mean=40e-6)
    services["cloud-frontend"] = _svc("cloud-frontend", "java", 150,
                                      kind=ServiceKind.FRONTEND)
    services["constructRoute"] = _svc("constructRoute", "java", 900)
    services["controller"] = _svc("controller", "javascript", 60,
                                  kind=ServiceKind.EDGE)
    services["motionControl"] = _svc("motionControl", "javascript", 150,
                                     kind=ServiceKind.EDGE)
    services["imageRecognition"] = _recognition("edge")
    services["obstacleAvoidance"] = _avoidance("edge")
    # Only a subset of stores; most sensor data stays on the drones.
    for name in ["targetDB", "locationDB", "videoDB", "imageDB",
                 "stockImageDB"]:
        services[name] = mongodb(name)
    services.update(_sensor_services())

    zones = {name: "edge" for name in _sensor_services()}
    zones.update({"controller": "edge", "motionControl": "edge",
                  "imageRecognition": "edge", "obstacleAvoidance": "edge"})

    ops = {}
    # All-on-drone paths: IPC between co-located services.
    ops["recognizeImage"] = Operation(
        name="recognizeImage", weight=40.0,
        root=CallNode(service="camera-image", request_kb=0.5,
                      response_kb=1.0, groups=seq(
            CallNode(service="controller", groups=seq(
                CallNode(service="imageRecognition", request_kb=80.0,
                         groups=seq(CallNode(service="log"))))))))
    ops["avoidObstacle"] = Operation(
        name="avoidObstacle", weight=40.0,
        root=CallNode(service="location", groups=seq(
            CallNode(service="controller", groups=seq(
                CallNode(service="obstacleAvoidance", groups=seq(
                    CallNode(service="motionControl"),
                    CallNode(service="log"))))))))
    # Cloud-touching paths: route construction and archival.
    ops["constructRoute"] = Operation(
        name="constructRoute", weight=5.0,
        root=CallNode(service="controller", groups=seq(
            CallNode(service="nginx-lb", request_kb=2.0, groups=seq(
                CallNode(service="cloud-frontend", groups=seq(
                    CallNode(service="constructRoute", groups=[
                        [CallNode(service="targetDB"),
                         CallNode(service="locationDB")],
                    ]))))))))
    ops["archiveMedia"] = Operation(
        name="archiveMedia", weight=10.0,
        root=CallNode(service="camera-video", request_kb=0.5, groups=seq(
            CallNode(service="edge-router", request_kb=256.0, groups=seq(
                CallNode(service="nginx-lb", request_kb=256.0, groups=seq(
                    CallNode(service="cloud-frontend", groups=par(
                        CallNode(service="videoDB", request_kb=256.0),
                        CallNode(service="imageDB", request_kb=64.0),
                        CallNode(service="stockImageDB",
                                 request_kb=8.0))))))),
            CallNode(service="diagnostics"),
            CallNode(service="log"))))
    ops["uploadTelemetry"] = Operation(
        name="uploadTelemetry", weight=5.0,
        root=CallNode(service="speed", groups=seq(
            CallNode(service="orientation"),
            CallNode(service="luminosity"),
            CallNode(service="controller", groups=seq(
                CallNode(service="edge-router", request_kb=8.0, groups=seq(
                    CallNode(service="nginx-lb", request_kb=8.0,
                             groups=seq(
                        CallNode(service="cloud-frontend", groups=seq(
                            CallNode(service="locationDB"))))))))),
            CallNode(service="log"))))

    # Same tiering as the cloud configuration: the on-drone flight
    # loops stay critical, route planning degrades, archival sheds.
    ops["constructRoute"].criticality = CRIT_DEGRADABLE
    ops["archiveMedia"].criticality = CRIT_SHEDDABLE
    ops["uploadTelemetry"].criticality = CRIT_DEGRADABLE

    degradation_policies = {
        "diagnostics": DegradationPolicy(
            service="diagnostics", optional=True, drop_level=1,
            fidelity_cost=0.05),
        "log": DegradationPolicy(
            service="log", optional=True, drop_level=2,
            fidelity_cost=0.05),
        # Archival fans out to three stores; videoDB (no policy) always
        # persists, the image mirrors trim to one under brownout.
        "imageDB": DegradationPolicy(
            service="imageDB", fanout_keep=1, fanout_level=1,
            fidelity_cost=0.15),
        "stockImageDB": DegradationPolicy(
            service="stockImageDB", fanout_keep=1, fanout_level=1,
            fidelity_cost=0.15),
        "obstacleAvoidance": DegradationPolicy(
            service="obstacleAvoidance", never_drop=True),
        "motionControl": DegradationPolicy(
            service="motionControl", never_drop=True),
    }

    return Application(
        name="swarm_edge",
        services=services,
        operations=ops,
        protocol=Protocol.HTTP,
        qos_latency=SWARM_QOS,
        entry_service="controller",
        service_zones=zones,
        degradation_policies=degradation_policies,
        metadata={
            "paper_table1": {
                "total_locs": 13876,
                "protocol": "REST",
                "handwritten_rest_locs": 4757,
                "unique_microservices": 21,
                "language_share": {
                    "c": 0.29, "javascript": 0.25, "java": 0.16,
                    "node.js": 0.16, "c++": 0.11, "python": 0.03,
                },
            },
        },
    )
