"""Seeded parametric topology generators.

The five hand-built applications pin the suite to five shapes; the
paper's hardware/software conclusions, though, hinge on topology form —
fan-out width, chain depth, where the backpressure points sit.  This
module generates *arbitrary* applications from a handful of parameters,
fully deterministically: the same :class:`GeneratorParams` always yields
the same :class:`~repro.services.app.Application`, byte-for-byte (see
:func:`topology_json`), so generated topologies can anchor regression
tests and CI matrices exactly like the hand-built ones.

Patterns (:data:`~repro.analysis_static.synthcheck.PATTERNS`):

``chain``
    Sequential chain — entry -> s1 -> ... -> sN, one call per tier.
``fanout``
    Parallel fan-out — the entry calls every other tier in one group.
``branch``
    Chain with branching — a sequential spine, each spine tier fanning
    out to a parallel group of side legs.
``tree``
    Balanced hierarchical k-ary tree with parallel child dispatch.
``ptree``
    Probabilistic tree — the balanced tree plus sampled subtree
    operation variants, so the *mix* realizes probabilistic fan-out
    while every individual operation stays a deterministic tree.
``mesh``
    Complex mesh — a random DAG where tiers share downstreams; the
    call tree expands each shared tier's subtree on first visit and
    re-visits it as a leaf call (an idempotent read).

Every generated app carries three request-criticality tiers (a critical
write, a degradable read, a sheddable probe), cache/database leaf
placement with matching degradation policies, and passes the same
registration-time validation (TOPO001-006, DEG001) as the hand-built
apps.  Apps are addressable through the registry by spec name —
``build_app("synth:mesh:n32:seed7")``.
"""

from __future__ import annotations

import json
import random
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...analysis_static.rules import Severity
from ...analysis_static.synthcheck import PATTERNS, \
    check_generator_params
from ...analysis_static.topology import TopologyError, validate_app
from ...resilience.degrade import CRIT_CRITICAL, CRIT_DEGRADABLE, \
    CRIT_SHEDDABLE, FALLBACK_DEFAULT, FALLBACK_STALE_CACHE, \
    DegradationPolicy
from ...services.app import Application, Operation, Protocol
from ...services.calltree import CallNode
from ...services.definition import ServiceDefinition, ServiceKind
from ...sim.rng import _derive_seed

__all__ = ["PATTERNS", "GeneratorParams", "generate", "parse_spec",
           "topology_json"]

#: Languages cycled across logic tiers (all carry calibrated traits).
_LOGIC_LANGUAGES = ("c++", "go", "java", "python", "node.js")


@dataclass(frozen=True)
class GeneratorParams:
    """Everything that determines one generated topology.

    The full parameter vocabulary is documented in DESIGN.md; the
    envelope every field must stay inside is enforced by
    :func:`repro.analysis_static.synthcheck.check_generator_params`
    (rule ``SYN001``).
    """

    pattern: str
    size: int
    seed: int = 0
    #: Branching factor for ``branch``/``tree``/``ptree`` and the max
    #: parallel-group width (and DAG in-degree) for ``mesh``.
    fanout: int = 3
    #: ``ptree``: probability a child edge survives in a sampled
    #: operation variant; ``mesh``: probability of each extra DAG edge.
    edge_probability: float = 0.35
    #: Per-tier mean service-time draw ranges, microseconds (uniform).
    logic_work_us: Tuple[float, float] = (60.0, 240.0)
    cache_work_us: Tuple[float, float] = (8.0, 30.0)
    db_work_us: Tuple[float, float] = (150.0, 450.0)
    #: Coefficient of variation of every tier's lognormal service time.
    work_cv: float = 0.5
    #: Fraction of structural leaves realized as datastores
    #: (alternating cache / database).
    datastore_fraction: float = 0.35
    request_kb: float = 1.0
    response_kb: float = 2.0
    protocol: str = Protocol.RPC
    #: ``ptree`` only: number of sampled subtree operation variants.
    variants: int = 2

    @property
    def name(self) -> str:
        """The registry spec name, e.g. ``synth:mesh:n32:seed7``."""
        return f"synth:{self.pattern}:n{self.size}:seed{self.seed}"


_SPEC_RE = re.compile(r"^synth:([a-z]+):n(\d+):seed(\d+)$")


def parse_spec(name: str) -> GeneratorParams:
    """Parse a ``synth:PATTERN:nSIZE:seedSEED`` registry name."""
    match = _SPEC_RE.match(name)
    if not match:
        raise ValueError(
            f"malformed generator spec {name!r}; expected "
            f"synth:PATTERN:nSIZE:seedSEED with PATTERN one of "
            f"{', '.join(PATTERNS)} (e.g. synth:mesh:n32:seed7)")
    return GeneratorParams(pattern=match.group(1),
                           size=int(match.group(2)),
                           seed=int(match.group(3)))


# ---------------------------------------------------------------------
# structure: every pattern reduces to a dispatch plan
# ---------------------------------------------------------------------

@dataclass
class _Plan:
    """Node index -> ordered groups of child indices (0 = entry).

    ``dag`` marks plans whose child indices repeat across parents
    (``mesh``): expansion then inlines a shared tier's subtree on first
    visit only and re-visits it as a leaf call.
    """

    groups: Dict[int, List[List[int]]]
    dag: bool = False

    def children(self, idx: int) -> List[int]:
        return [k for group in self.groups.get(idx, []) for k in group]

    def leaves(self, size: int) -> List[int]:
        return [i for i in range(size) if not self.groups.get(i)]


def _chunk(kids: List[int], rng: random.Random, width: int
           ) -> List[List[int]]:
    """Split a child list into serial groups of parallel calls."""
    groups: List[List[int]] = []
    current: List[int] = []
    for kid in kids:
        current.append(kid)
        if len(current) >= width or rng.random() < 0.45:
            groups.append(current)
            current = []
    if current:
        groups.append(current)
    return groups


def _plan_chain(size: int, _p: GeneratorParams, _r: random.Random
                ) -> _Plan:
    return _Plan({i: [[i + 1]] for i in range(size - 1)})


def _plan_fanout(size: int, _p: GeneratorParams, _r: random.Random
                 ) -> _Plan:
    return _Plan({0: [list(range(1, size))]})


def _plan_branch(size: int, params: GeneratorParams,
                 _r: random.Random) -> _Plan:
    spine_len = max(2, -(-size // (params.fanout + 1)))
    spine_len = min(spine_len, size)
    groups: Dict[int, List[List[int]]] = {}
    legs: Dict[int, List[int]] = {}
    for idx in range(spine_len, size):
        anchor = (idx - spine_len) % spine_len
        legs.setdefault(anchor, []).append(idx)
    for idx in range(spine_len):
        entry: List[List[int]] = []
        if legs.get(idx):
            entry.append(legs[idx])
        if idx + 1 < spine_len:
            entry.append([idx + 1])
        if entry:
            groups[idx] = entry
    return _Plan(groups)


def _plan_tree(size: int, params: GeneratorParams, _r: random.Random
               ) -> _Plan:
    k = params.fanout
    groups: Dict[int, List[List[int]]] = {}
    for idx in range(size):
        kids = [c for c in range(k * idx + 1, k * idx + k + 1)
                if c < size]
        if kids:
            groups[idx] = [kids]
    return _Plan(groups)


def _plan_mesh(size: int, params: GeneratorParams, rng: random.Random
               ) -> _Plan:
    # Spanning tree first (reachability), then extra low->high edges
    # capped at `fanout` parents per tier; always acyclic.
    parents: Dict[int, List[int]] = {i: [] for i in range(size)}
    for idx in range(1, size):
        parents[idx].append(rng.randrange(0, idx))
    for idx in range(2, size):
        candidates = [j for j in range(idx) if j not in parents[idx]]
        for cand in candidates:
            if len(parents[idx]) >= params.fanout:
                break
            if rng.random() < params.edge_probability:
                parents[idx].append(cand)
    succ: Dict[int, List[int]] = {i: [] for i in range(size)}
    for idx in range(1, size):
        for parent in sorted(parents[idx]):
            succ[parent].append(idx)
    groups = {idx: _chunk(kids, rng, params.fanout)
              for idx, kids in succ.items() if kids}
    return _Plan(groups, dag=True)


_PLANNERS = {
    "chain": _plan_chain,
    "fanout": _plan_fanout,
    "branch": _plan_branch,
    "tree": _plan_tree,
    "ptree": _plan_tree,
    "mesh": _plan_mesh,
}


# ---------------------------------------------------------------------
# realization: plan -> services + call trees -> Application
# ---------------------------------------------------------------------

def _draw_us(rng: random.Random, lo_hi: Tuple[float, float]) -> float:
    return round(rng.uniform(lo_hi[0], lo_hi[1]), 1)


def _services(plan: _Plan, params: GeneratorParams,
              rng: random.Random
              ) -> Tuple[Dict[str, ServiceDefinition], List[str]]:
    """Name and define every tier; returns (defs, index -> name)."""
    names: List[str] = []
    defs: Dict[str, ServiceDefinition] = {}
    leaves = plan.leaves(params.size)
    leaf_flags = {idx: True for idx in leaves}
    datastore_count = 0
    for idx in range(params.size):
        if idx == 0:
            name = "syn-front"
            work = _draw_us(rng, params.logic_work_us) * 0.5
            definition = ServiceDefinition(
                name=name, language="c++", kind=ServiceKind.FRONTEND,
                work_mean=round(work, 1) * 1e-6,
                work_cv=params.work_cv)
        elif leaf_flags.get(idx) and \
                rng.random() < params.datastore_fraction:
            if datastore_count % 2 == 0:
                name = f"syn-cache-{idx:03d}"
                definition = ServiceDefinition(
                    name=name, language="c", kind=ServiceKind.CACHE,
                    work_mean=_draw_us(rng, params.cache_work_us)
                    * 1e-6,
                    work_cv=params.work_cv, freq_sensitivity=0.6)
            else:
                name = f"syn-db-{idx:03d}"
                definition = ServiceDefinition(
                    name=name, language="c++",
                    kind=ServiceKind.DATABASE,
                    work_mean=_draw_us(rng, params.db_work_us) * 1e-6,
                    work_cv=params.work_cv, freq_sensitivity=0.3)
            datastore_count += 1
        else:
            name = f"syn-logic-{idx:03d}"
            definition = ServiceDefinition(
                name=name,
                language=_LOGIC_LANGUAGES[idx % len(_LOGIC_LANGUAGES)],
                kind=ServiceKind.LOGIC,
                work_mean=_draw_us(rng, params.logic_work_us) * 1e-6,
                work_cv=params.work_cv)
        names.append(name)
        defs[name] = definition
    return defs, names


def _build_tree(plan: _Plan, names: List[str],
                params: GeneratorParams, work_scale: float,
                groups_of: Optional[Dict[int, List[List[int]]]] = None
                ) -> CallNode:
    """Expand a plan into a call tree (first-visit-full for DAGs)."""
    groups_of = plan.groups if groups_of is None else groups_of
    visited: Dict[int, bool] = {}

    def build(idx: int) -> CallNode:
        first = idx not in visited
        visited[idx] = True
        groups: List[List[CallNode]] = []
        if first or not plan.dag:
            for group in groups_of.get(idx, []):
                groups.append([build(kid) for kid in group])
        return CallNode(service=names[idx], work_scale=work_scale,
                        request_kb=params.request_kb,
                        response_kb=params.response_kb,
                        groups=groups)

    return build(0)


def _prune(groups_of: Dict[int, List[List[int]]],
           keep_probability: float, rng: random.Random
           ) -> Dict[int, List[List[int]]]:
    """Drop child edges independently; empty groups vanish."""
    pruned: Dict[int, List[List[int]]] = {}
    for idx in sorted(groups_of):
        new_groups = []
        for group in groups_of[idx]:
            kept = [kid for kid in group
                    if rng.random() < keep_probability]
            if kept:
                new_groups.append(kept)
        if new_groups:
            pruned[idx] = new_groups
    return pruned


def _operations(plan: _Plan, names: List[str],
                params: GeneratorParams, rng: random.Random
                ) -> Dict[str, Operation]:
    prefix = params.pattern
    ops: Dict[str, Operation] = {}
    if params.pattern == "ptree":
        # The full tree anchors reachability; sampled prunings realize
        # the probabilistic fan-out through the operation mix.
        full = _build_tree(plan, names, params, 1.0)
        ops[f"{prefix}-full"] = Operation(
            name=f"{prefix}-full", root=full, weight=4.0,
            criticality=CRIT_DEGRADABLE)
        crits = (CRIT_CRITICAL, CRIT_SHEDDABLE, CRIT_DEGRADABLE)
        for variant in range(params.variants):
            sub = _prune(plan.groups, params.edge_probability, rng)
            weight = round(rng.uniform(1.0, 3.0), 1)
            name = f"{prefix}-variant{variant}"
            ops[name] = Operation(
                name=name,
                root=_build_tree(plan, names, params, 1.0,
                                 groups_of=sub),
                weight=weight, criticality=crits[variant % 3])
        return ops
    read = _build_tree(plan, names, params, 1.0)
    write = _build_tree(plan, names, params, 1.4)
    first_child = plan.groups[0][0][0] if plan.groups.get(0) else None
    probe_groups = {0: [[first_child]]} if first_child is not None \
        else {}
    probe = _build_tree(plan, names, params, 0.6,
                        groups_of=probe_groups)
    ops[f"{prefix}-read"] = Operation(
        name=f"{prefix}-read", root=read, weight=6.0,
        criticality=CRIT_DEGRADABLE)
    ops[f"{prefix}-write"] = Operation(
        name=f"{prefix}-write", root=write, weight=3.0,
        criticality=CRIT_CRITICAL)
    ops[f"{prefix}-probe"] = Operation(
        name=f"{prefix}-probe", root=probe, weight=1.0,
        criticality=CRIT_SHEDDABLE)
    return ops


def _degradation(defs: Dict[str, ServiceDefinition]
                 ) -> Dict[str, DegradationPolicy]:
    policies: Dict[str, DegradationPolicy] = {}
    logic_leaf: Optional[str] = None
    for name in sorted(defs):
        if defs[name].kind == ServiceKind.CACHE:
            policies[name] = DegradationPolicy(
                service=name, fallback=FALLBACK_STALE_CACHE,
                fidelity_cost=0.05)
        elif defs[name].kind == ServiceKind.LOGIC:
            logic_leaf = name
    if logic_leaf is not None:
        policies[logic_leaf] = DegradationPolicy(
            service=logic_leaf, optional=True, drop_level=1,
            fallback=FALLBACK_DEFAULT, fidelity_cost=0.15)
    return dict(sorted(policies.items()))


def _qos(defs: Dict[str, ServiceDefinition],
         ops: Dict[str, Operation]) -> float:
    worst_work = max(
        sum(defs[node.service].work_mean * node.work_scale
            for node in op.root.walk())
        for op in ops.values())
    worst_calls = max(op.root.call_count() for op in ops.values())
    return round(max(0.05, 6.0 * worst_work + 3e-4 * worst_calls), 6)


def generate(params: GeneratorParams,
             validate: bool = True) -> Application:
    """Build one application from a parameter set, deterministically.

    Raises :class:`~repro.analysis_static.topology.TopologyError` with
    ``SYN001`` findings for out-of-envelope parameters, and (when
    ``validate``) with ``TOPO``/``DEG`` findings if the generated graph
    somehow fails registration-time validation — which would be a
    generator bug, not a caller error.
    """
    errors = [f for f in check_generator_params(params,
                                                path=params.name)
              if f.severity == Severity.ERROR]
    if errors:
        raise TopologyError(params.name, errors)
    rng = random.Random(_derive_seed(
        params.seed, f"synth.{params.pattern}.n{params.size}"))
    plan = _PLANNERS[params.pattern](params.size, params, rng)
    defs, names = _services(plan, params, rng)
    ops = _operations(plan, names, params, rng)
    app = Application(
        name=params.name,
        services=defs,
        operations=ops,
        protocol=params.protocol,
        qos_latency=_qos(defs, ops),
        entry_service=names[0],
        degradation_policies=_degradation(defs),
        metadata={
            "generator": "repro.apps.synth",
            "synth": {
                "pattern": params.pattern, "size": params.size,
                "seed": params.seed, "fanout": params.fanout,
                "edge_probability": params.edge_probability,
                "datastore_fraction": params.datastore_fraction,
            },
        },
    )
    if validate:
        problems = [f for f in validate_app(app)
                    if f.severity == Severity.ERROR]
        if problems:
            raise TopologyError(params.name, problems)
    return app


# ---------------------------------------------------------------------
# canonical serialization (determinism tests and artifacts key off it)
# ---------------------------------------------------------------------

def _tree_dict(node: CallNode) -> dict:
    return {
        "service": node.service,
        "work_scale": round(node.work_scale, 6),
        "request_kb": round(node.request_kb, 6),
        "response_kb": round(node.response_kb, 6),
        "groups": [[_tree_dict(child) for child in group]
                   for group in node.groups],
    }


def topology_json(app: Application, indent: Optional[int] = 2) -> str:
    """Canonical, byte-stable JSON form of any application's topology.

    Same (pattern, size, seed) => byte-identical output; the clone
    cross-validation and CI determinism gates compare these bytes.
    """
    payload = {
        "name": app.name,
        "protocol": app.protocol,
        "qos_latency_us": round(app.qos_latency * 1e6, 1),
        "entry_service": app.entry_service,
        "services": [
            {
                "name": name,
                "kind": svc.kind,
                "language": svc.language,
                "work_us": round(svc.work_mean * 1e6, 3),
                "work_cv": round(svc.work_cv, 4),
                "max_workers": svc.max_workers,
            }
            for name, svc in sorted(app.services.items())
        ],
        "operations": [
            {
                "name": name,
                "weight": round(op.weight, 4),
                "criticality": op.criticality,
                "tree": _tree_dict(op.root),
            }
            for name, op in sorted(app.operations.items())
        ],
        "degradation_policies": [
            {
                "service": pol.service,
                "optional": pol.optional,
                "drop_level": pol.drop_level,
                "fallback": pol.fallback,
                "fidelity_cost": round(pol.fidelity_cost, 4),
                "fanout_keep": pol.fanout_keep,
            }
            for _, pol in sorted(app.degradation_policies.items())
        ],
        "sharded_services": sorted(app.sharded_services),
    }
    return json.dumps(payload, indent=indent, sort_keys=True)
