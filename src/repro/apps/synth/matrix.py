"""Scenario-matrix harness: patterns x sizes x seeds, one report.

Sweeps the generator envelope and smoke-runs every synthetic app twice:
a clean baseline (resilience on, no faults) and a chaos scenario from
:mod:`repro.chaos`.  The consolidated report is byte-stable for a given
matrix spec — same patterns, sizes, seeds, and load produce the same
JSON bytes — so CI can diff two runs to gate on determinism, and the
markdown rendering drops straight into a PR comment.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...resilience.policy import ResiliencePolicy
from .generator import GeneratorParams, generate

__all__ = ["MatrixCell", "MatrixReport", "MatrixSpec", "run_matrix"]

#: The default sweep: every pattern the generator supports, three
#: decades of scale, two seeds (ISSUE acceptance: >=5 patterns x 3
#: sizes, deterministically).
DEFAULT_PATTERNS: Tuple[str, ...] = (
    "chain", "fanout", "branch", "tree", "ptree", "mesh")
DEFAULT_SIZES: Tuple[int, ...] = (8, 16, 32)
DEFAULT_SEEDS: Tuple[int, ...] = (1, 2)


@dataclass(frozen=True)
class MatrixSpec:
    """One sweep definition (the report embeds it verbatim)."""

    patterns: Tuple[str, ...] = DEFAULT_PATTERNS
    sizes: Tuple[int, ...] = DEFAULT_SIZES
    seeds: Tuple[int, ...] = DEFAULT_SEEDS
    qps: float = 120.0
    duration: float = 12.0
    n_machines: int = 4
    #: Chaos scenario smoke-run per cell alongside the clean baseline;
    #: None skips the fault leg (pure determinism/latency sweep).
    scenario: Optional[str] = "machine_crash"

    def cells(self) -> List[Tuple[str, int, int]]:
        return [(pattern, size, seed)
                for pattern in self.patterns
                for size in self.sizes
                for seed in self.seeds]


@dataclass
class MatrixCell:
    """One (pattern, size, seed) cell's results."""

    app: str
    pattern: str
    size: int
    seed: int
    services: int
    operations: int
    qos_latency_us: float
    baseline_p50_ms: float
    baseline_p99_ms: float
    baseline_completion: float
    baseline_steady: bool
    chaos_scenario: Optional[str] = None
    chaos_fault_count: int = 0
    chaos_mttr_s: Optional[float] = None
    chaos_goodput_lost: float = 0.0
    chaos_blast_tiers: int = 0

    def to_dict(self) -> dict:
        row = {
            "app": self.app,
            "pattern": self.pattern,
            "size": self.size,
            "seed": self.seed,
            "services": self.services,
            "operations": self.operations,
            "qos_latency_us": round(self.qos_latency_us, 1),
            "baseline": {
                "p50_ms": round(self.baseline_p50_ms, 3),
                "p99_ms": round(self.baseline_p99_ms, 3),
                "completion": round(self.baseline_completion, 4),
                "steady_state_ok": self.baseline_steady,
            },
        }
        if self.chaos_scenario is not None:
            row["chaos"] = {
                "scenario": self.chaos_scenario,
                "fault_count": self.chaos_fault_count,
                "mttr_s": None if self.chaos_mttr_s is None
                else round(self.chaos_mttr_s, 3),
                "goodput_lost": round(self.chaos_goodput_lost, 4),
                "blast_radius_tiers": self.chaos_blast_tiers,
            }
        return row


@dataclass
class MatrixReport:
    """The consolidated sweep outcome."""

    spec: MatrixSpec
    cells: List[MatrixCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Every cell completed its baseline with steady state held."""
        return bool(self.cells) and all(
            c.baseline_steady and c.baseline_completion > 0.9
            for c in self.cells)

    def to_dict(self) -> dict:
        return {
            "report": "synth-matrix",
            "ok": self.ok,
            "spec": {
                "patterns": list(self.spec.patterns),
                "sizes": list(self.spec.sizes),
                "seeds": list(self.spec.seeds),
                "qps": self.spec.qps,
                "duration": self.spec.duration,
                "n_machines": self.spec.n_machines,
                "scenario": self.spec.scenario,
            },
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def to_json(self, indent: int = 2) -> str:
        """Byte-stable serialization (sorted keys, rounded floats)."""
        return json.dumps(self.to_dict(), indent=indent,
                          sort_keys=True) + "\n"

    def render_markdown(self) -> str:
        lines = [
            "# synth scenario matrix",
            "",
            f"- patterns: {', '.join(self.spec.patterns)}",
            f"- sizes: {', '.join(str(s) for s in self.spec.sizes)}"
            f" | seeds: {', '.join(str(s) for s in self.spec.seeds)}",
            f"- load: {self.spec.qps:g} qps x "
            f"{self.spec.duration:g}s on {self.spec.n_machines} "
            f"machines | chaos: {self.spec.scenario or '(none)'}",
            f"- verdict: {'OK' if self.ok else 'DEGRADED'}",
            "",
            "| app | svcs | p50 ms | p99 ms | done | steady |"
            " faults | mttr s | goodput lost |",
            "|---|---:|---:|---:|---:|---|---:|---:|---:|",
        ]
        for c in self.cells:
            mttr = "-" if c.chaos_mttr_s is None \
                else f"{c.chaos_mttr_s:.2f}"
            lines.append(
                f"| {c.app} | {c.services} "
                f"| {c.baseline_p50_ms:.2f} | {c.baseline_p99_ms:.2f} "
                f"| {c.baseline_completion:.3f} "
                f"| {'yes' if c.baseline_steady else 'NO'} "
                f"| {c.chaos_fault_count} | {mttr} "
                f"| {c.chaos_goodput_lost:.3f} |")
        lines.append("")
        return "\n".join(lines)


def _cell_policy(app) -> ResiliencePolicy:
    """A modest default resilience stance for smoke cells: one retry,
    per-attempt timeout at the QoS target (tight enough to exercise
    hedging against faults, loose enough not to self-inflict).  The
    retry budget and propagated deadline are not optional niceties:
    with a retry at *every* tier, a deep generated graph amplifies a
    total-outage window by 2^depth attempts, and abandoned attempts
    keep computing at every tier below them — the exact metastable
    retry storm the resilience layer exists to stop."""
    return ResiliencePolicy(rpc_timeout=app.qos_latency, max_retries=1,
                            retry_budget_ratio=0.2,
                            deadline=app.qos_latency * 4,
                            propagate_deadline=True)


def run_matrix(spec: Optional[MatrixSpec] = None,
               progress=None) -> MatrixReport:
    """Run the sweep and return the consolidated report.

    Each cell builds its app fresh from the generator, provisions it
    for the offered load with 2x headroom (a machine crash on a
    single-replica deployment takes out whole tiers and turns the
    fault leg into a retry storm instead of a measurement), runs the
    baseline chaos scenario (steady-state probe, no faults) and the
    spec's fault scenario, then unregisters the spec name so cached
    validation state never leaks between cells.  ``progress`` is an
    optional ``callable(str)`` for per-cell status lines.
    """
    from ...chaos.harness import run_chaos_scenario
    from ...core.provisioning import balanced_provision
    from ..registry import unregister_app

    spec = spec or MatrixSpec()
    report = MatrixReport(spec=spec)
    for pattern, size, seed in spec.cells():
        params = GeneratorParams(pattern=pattern, size=size, seed=seed)
        app = generate(params)
        if progress is not None:
            progress(f"[{app.name}] baseline")
        policy = _cell_policy(app)
        replicas = balanced_provision(
            app, target_qps=max(spec.qps * 2.0, 20.0))
        base = run_chaos_scenario(
            app, "baseline", qps=spec.qps, duration=spec.duration,
            n_machines=spec.n_machines, seed=seed,
            replicas=replicas, default_policy=policy)
        result = base.result
        cell = MatrixCell(
            app=app.name, pattern=pattern, size=size, seed=seed,
            services=len(app.services),
            operations=len(app.operations),
            qos_latency_us=app.qos_latency * 1e6,
            baseline_p50_ms=result.tail(0.50) * 1e3,
            baseline_p99_ms=result.tail(0.99) * 1e3,
            baseline_completion=result.completion_ratio(),
            baseline_steady=base.scorecard.steady_state_ok)
        if spec.scenario:
            if progress is not None:
                progress(f"[{app.name}] chaos:{spec.scenario}")
            chaos = run_chaos_scenario(
                app, spec.scenario, qps=spec.qps,
                duration=spec.duration, n_machines=spec.n_machines,
                seed=seed, replicas=replicas, default_policy=policy)
            card = chaos.scorecard
            cell.chaos_scenario = spec.scenario
            cell.chaos_fault_count = card.fault_count
            cell.chaos_mttr_s = card.mttr
            cell.chaos_goodput_lost = card.goodput_lost
            cell.chaos_blast_tiers = len(card.blast_tiers)
        report.cells.append(cell)
        unregister_app(app.name)
    return report
