"""Trace-driven application cloning (the Ditto recipe).

Given an exported trace set from *any* run of *any* application, infer
a registered :class:`~repro.services.app.Application` whose simulated
behavior matches the original's per-tier latency distributions:

1. **Structure** — per operation, the modal span-tree shape across its
   successful traces is taken as the call tree (the suite's call trees
   are deterministic, so the modal shape is the true tree; retries and
   degradation produce the minority shapes).
2. **Dispatch** — serial vs. parallel child grouping is recovered from
   span timing: a child overlapping its predecessor (majority vote
   across traces) was dispatched in the same parallel group.
3. **Service times** — each tier's ``work_mean`` is the mean observed
   per-span compute wall time, per-call-site ``work_scale`` the ratio
   of that site's mean to the tier mean, and ``work_cv`` the dispersion
   of site-normalized samples — valid when the export came from a
   moderately loaded run, where processor-sharing inflation is small
   (the fidelity tolerance documents the residual).
4. **Payloads** — per-call-site request+response sizes are recovered by
   inverting the zero-load network cost model (overheads + wire + NIC
   + per-KB kernel CPU) against the site's mean network time.
5. **Mix** — operation weights are trace counts; criticality comes
   from the degradation layer's root-span annotations when present.

Cross-validation (:func:`validate_clone`) re-simulates the clone and
compares per-tier p50/p95/p99 span-duration tables against the original
trace set within a documented tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ...analysis_static.rules import Finding, Severity
from ...analysis_static.synthcheck import check_trace_set
from ...analysis_static.topology import TopologyError, validate_app
from ...cluster.machine import NIC_10G_KB_PER_S
from ...net.fabric import DEFAULT_ZONE_LATENCY
from ...net.protocols import costs_for
from ...resilience.degrade import CRIT_CRITICAL, CRITICALITIES
from ...services.app import Application, Operation, Protocol
from ...services.calltree import CallNode
from ...services.definition import ServiceDefinition, ServiceKind
from ...tracing.span import Span, Trace

__all__ = ["CloneConfig", "CloneResult", "FidelityReport",
           "TierFidelity", "clone_from_traces", "load_traces",
           "percentile_table", "validate_clone"]

#: Documented cross-validation tolerance: max relative drift of the
#: clone's per-tier percentiles vs. the original trace set.  p50 is the
#: distribution body (tightest); tails absorb processor-sharing
#: inflation, queueing noise, and finite-sample percentile error.
DEFAULT_TOLERANCE: Dict[str, float] = {
    "p50": 0.25, "p95": 0.35, "p99": 0.45,
}

#: A percentile also passes when its absolute error is under this
#: floor (seconds).  Replica placement is unobservable from traces —
#: a call colocated in the source run may land cross-machine in the
#: clone (or vice versa), shifting a tier by a few remote-RPC network
#: legs (~100us each) regardless of how well the distributions fit.
DEFAULT_ABS_FLOOR_S: float = 2.5e-4

#: Nearest-rank percentiles need ~a few/(1-p) samples to stabilize;
#: a percentile is compared only when both sides clear its count.
PCTL_MIN_SAMPLES: Dict[str, int] = {"p50": 30, "p95": 100, "p99": 300}


@dataclass(frozen=True)
class CloneConfig:
    """Knobs of the inference pass."""

    #: Operations with fewer successful traces than this are skipped
    #: (not enough evidence for a modal shape).
    min_operation_traces: int = 5
    #: Tiers below this span-sample count draw a SYN002 warning.
    min_service_samples: int = 20
    #: Fitted work_cv is clamped into [0.05, max_work_cv].
    max_work_cv: float = 2.0
    #: Wire protocol assumed when inverting network times.
    protocol: str = Protocol.RPC
    #: QoS target = observed p99 end-to-end latency x this margin.
    qos_margin: float = 1.3
    #: Tier mean compute below this is typed as a cache, above as a
    #: database — for structural leaves only; interior tiers are logic.
    cache_threshold_us: float = 60.0


@dataclass
class CloneResult:
    """The rebuilt application plus the inference evidence."""

    app: Application
    source_traces: int
    used_traces: int
    per_service_samples: Dict[str, int]
    warnings: List[Finding] = field(default_factory=list)


# ---------------------------------------------------------------------
# trace ingestion
# ---------------------------------------------------------------------

def load_traces(payload: str) -> List[Trace]:
    """Parse a trace export, auto-detecting the envelope.

    Accepts both portable formats the suite writes: the Zipkin-style
    schema-v2 envelope (:func:`repro.tracing.traces_to_json`) and the
    OTLP ``resourceSpans`` dump (:func:`repro.obs.traces_to_otlp_json`).
    """
    from ...obs.exporters import otlp_json_to_traces
    from ...tracing.export import traces_from_json
    if '"resourceSpans"' in payload[:10_000]:
        return otlp_json_to_traces(payload)
    return traces_from_json(payload)


# ---------------------------------------------------------------------
# shape inference
# ---------------------------------------------------------------------

def _shape(span: Span) -> tuple:
    """Hashable structural signature of a span tree (service + kids)."""
    return (span.service, tuple(_shape(c) for c in span.children))


def _modal_shape(traces: Sequence[Trace]) -> Tuple[tuple, List[Trace]]:
    """The most common span-tree shape and the traces that carry it
    (first-seen order breaks ties deterministically)."""
    counts: Dict[tuple, int] = {}
    order: List[tuple] = []
    for trace in traces:
        sig = _shape(trace.root)
        if sig not in counts:
            order.append(sig)
        counts[sig] = counts.get(sig, 0) + 1
    best = max(order, key=lambda sig: counts[sig])
    return best, [t for t in traces if _shape(t.root) == best]


def _parallel_votes(traces: Sequence[Trace]) -> Dict[int, List[bool]]:
    """Per preorder-node index: for each child boundary j (1-based),
    True when child j overlapped child j-1 in a majority of traces —
    i.e. the two were dispatched in the same parallel group."""
    votes: Dict[Tuple[int, int], int] = {}
    totals: Dict[Tuple[int, int], int] = {}
    for trace in traces:
        for idx, span in enumerate(trace.root.walk()):
            for j in range(1, len(span.children)):
                prev, cur = span.children[j - 1], span.children[j]
                key = (idx, j)
                totals[key] = totals.get(key, 0) + 1
                if cur.start < prev.end - 1e-12:
                    votes[key] = votes.get(key, 0) + 1
    result: Dict[int, List[bool]] = {}
    for (idx, j), total in sorted(totals.items()):
        result.setdefault(idx, []).append(
            votes.get((idx, j), 0) * 2 > total)
    return result


# ---------------------------------------------------------------------
# timing fits
# ---------------------------------------------------------------------

def _positional_means(traces: Sequence[Trace]
                      ) -> Tuple[List[float], List[float]]:
    """Mean app_time and net_time per preorder call site."""
    app_sums: List[float] = []
    net_sums: List[float] = []
    n = len(traces)
    for trace in traces:
        for idx, span in enumerate(trace.root.walk()):
            if idx >= len(app_sums):
                app_sums.append(0.0)
                net_sums.append(0.0)
            app_sums[idx] += span.app_time
            net_sums[idx] += span.net_time
    return ([s / n for s in app_sums], [s / n for s in net_sums])


def _invert_payload(net_mean: float, is_root: bool,
                    config: CloneConfig) -> Tuple[float, float]:
    """Recover (request_kb, response_kb) from a call site's mean
    request+response transfer time via the zero-load network model.

    Three regimes, matching :meth:`repro.net.fabric.Fabric.transfer`:

    * **root span** — the client leg pays protocol CPU and NIC on the
      server side only, but crosses the client<->cloud wire twice;
    * **remote call** — both messages pay send+recv CPU, two NIC
      serializations, and the inter-machine wire;
    * **colocated call** (mean below the remote floor) — the source
      pair shared a machine, so the IPC cost model applies: no NIC, no
      wire, reduced overheads.  The inferred payload is meaningful even
      though the clone's own placement may differ — that residual is
      what the validation tolerance's absolute floor absorbs.
    """
    costs = costs_for(config.protocol)
    nic = 1.0 / NIC_10G_KB_PER_S
    if is_root:
        wire = DEFAULT_ZONE_LATENCY[("client", "cloud")]
        base = costs.send_overhead_s + costs.recv_overhead_s + 2 * wire
        per_kb = costs.per_kb_s + nic
    else:
        wire = DEFAULT_ZONE_LATENCY[("cloud", "cloud")]
        base = 2 * (costs.send_overhead_s + costs.recv_overhead_s
                    + wire)
        per_kb = 2 * (costs.per_kb_s + nic)
        if net_mean < base:
            ipc = costs_for("ipc")
            base = 2 * (ipc.send_overhead_s + ipc.recv_overhead_s)
            per_kb = 2 * ipc.per_kb_s
    total_kb = max(0.05, (net_mean - base) / per_kb)
    # The CallNode default splits payload 1/3 request : 2/3 response.
    return (round(total_kb / 3.0, 3), round(2.0 * total_kb / 3.0, 3))


def _percentile(samples: Sequence[float], p: float) -> float:
    """Nearest-rank percentile on a sorted copy (deterministic)."""
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1,
                      math.ceil(p * len(ordered)) - 1))
    return ordered[rank]


# ---------------------------------------------------------------------
# the cloner
# ---------------------------------------------------------------------

def clone_from_traces(traces: Iterable[Trace], name: str = "clone",
                      config: Optional[CloneConfig] = None,
                      register: bool = False) -> CloneResult:
    """Infer a matching application from an exported trace set.

    Raises :class:`~repro.analysis_static.topology.TopologyError` with
    ``SYN002`` findings when the set is unclonable.  With ``register``
    the clone lands in the app registry under ``name`` (duplicate names
    raise — see :func:`repro.apps.registry.register_app`).
    """
    config = config or CloneConfig()
    traces = list(traces)
    findings = check_trace_set(traces,
                               min_samples=config.min_service_samples,
                               path=name)
    errors = [f for f in findings if f.severity == Severity.ERROR]
    if errors:
        raise TopologyError(name, errors)
    warnings = [f for f in findings if f.severity == Severity.WARNING]

    ok = [t for t in traces if t.ok]
    entry = ok[0].root.service
    by_op: Dict[str, List[Trace]] = {}
    for trace in ok:
        by_op.setdefault(trace.operation, []).append(trace)

    # Tier-wide stats first: mean per visit, then the cv of samples
    # normalized by their call site's mean (the site mix would
    # otherwise masquerade as dispersion).
    svc_sums: Dict[str, Tuple[float, int]] = {}
    for trace in ok:
        for span in trace.root.walk():
            total, count = svc_sums.get(span.service, (0.0, 0))
            svc_sums[span.service] = (total + span.app_time, count + 1)
    svc_mean = {svc: total / count
                for svc, (total, count) in svc_sums.items()}
    svc_samples = {svc: count
                   for svc, (_, count) in svc_sums.items()}

    interior: Dict[str, bool] = {}
    norm_sq: Dict[str, Tuple[float, float, int]] = {}
    operations: Dict[str, Operation] = {}
    skipped: List[str] = []
    for op_name in sorted(by_op):
        group = by_op[op_name]
        if len(group) < config.min_operation_traces:
            skipped.append(f"{op_name} ({len(group)})")
            continue
        _, matching = _modal_shape(group)
        app_means, net_means = _positional_means(matching)
        votes = _parallel_votes(matching)
        exemplar = matching[0]
        for trace in matching:
            for idx, span in enumerate(trace.root.walk()):
                mean = app_means[idx]
                if mean > 0:
                    total, sq, count = norm_sq.get(span.service,
                                                   (0.0, 0.0, 0))
                    value = span.app_time / mean
                    norm_sq[span.service] = (total + value,
                                             sq + value * value,
                                             count + 1)
        counter = [0]

        def build(span: Span) -> CallNode:
            idx = counter[0]
            counter[0] += 1
            if span.children:
                interior[span.service] = True
            mean = app_means[idx]
            scale = mean / svc_mean[span.service] \
                if svc_mean.get(span.service) else 1.0
            req_kb, resp_kb = _invert_payload(
                net_means[idx], is_root=idx == 0, config=config)
            children = [build(child) for child in span.children]
            groups: List[List[CallNode]] = []
            for j, child in enumerate(children):
                if j > 0 and votes.get(idx, []) and \
                        votes[idx][j - 1]:
                    groups[-1].append(child)
                else:
                    groups.append([child])
            return CallNode(service=span.service,
                            work_scale=round(max(scale, 0.0), 6),
                            request_kb=req_kb, response_kb=resp_kb,
                            groups=groups)

        root = build(exemplar.root)
        criticality = CRIT_CRITICAL
        annotated = exemplar.root.annotations.get("criticality")
        if annotated in CRITICALITIES:
            criticality = annotated
        operations[op_name] = Operation(
            name=op_name, root=root, weight=float(len(group)),
            criticality=criticality)
    if not operations:
        raise TopologyError(name, [Finding(
            code="SYN002",
            message=f"every operation has fewer than "
                    f"{config.min_operation_traces} successful traces",
            path=name, severity=Severity.ERROR)])
    if skipped:
        warnings.append(Finding(
            code="SYN002",
            message=f"operations skipped for lack of traces: "
                    f"{', '.join(skipped)}",
            path=name, severity=Severity.WARNING))

    services: Dict[str, ServiceDefinition] = {}
    for svc in sorted(svc_mean):
        total, sq, count = norm_sq.get(svc, (0.0, 0.0, 0))
        cv = 0.0
        if count > 1:
            mean = total / count
            var = max(0.0, sq / count - mean * mean)
            cv = math.sqrt(var) / mean if mean > 0 else 0.0
        cv = min(max(cv, 0.05), config.max_work_cv)
        if svc == entry:
            kind = ServiceKind.FRONTEND
        elif interior.get(svc):
            kind = ServiceKind.LOGIC
        elif svc_mean[svc] * 1e6 < config.cache_threshold_us:
            kind = ServiceKind.CACHE
        else:
            kind = ServiceKind.DATABASE
        services[svc] = ServiceDefinition(
            name=svc, language="c++", kind=kind,
            work_mean=round(svc_mean[svc], 9), work_cv=round(cv, 4))

    latencies = [t.latency for t in ok]
    qos = round(max(_percentile(latencies, 0.99) * config.qos_margin,
                    0.01), 6)
    app = Application(
        name=name, services=services, operations=operations,
        protocol=config.protocol, qos_latency=qos,
        entry_service=entry,
        metadata={
            "generator": "repro.apps.synth.clone",
            "clone": {"source_traces": len(traces),
                      "used_traces": len(ok)},
        })
    problems = [f for f in validate_app(app)
                if f.severity == Severity.ERROR]
    if problems:
        raise TopologyError(name, problems)
    if register:
        from ..registry import register_app
        register_app(name, lambda: app)
    return CloneResult(app=app, source_traces=len(traces),
                       used_traces=len(ok),
                       per_service_samples=dict(sorted(
                           svc_samples.items())),
                       warnings=warnings)


# ---------------------------------------------------------------------
# cross-validation
# ---------------------------------------------------------------------

def percentile_table(traces: Iterable[Trace], start: float = 0.0,
                     by_operation: bool = False
                     ) -> Dict[str, Dict[str, float]]:
    """Per-tier span-duration percentile table from successful traces.

    The ``(end-to-end)`` pseudo-tier carries root-span latency.  With
    ``by_operation`` each tier is additionally sliced per operation
    (row key ``tier [operation]``): a tier's pooled duration
    distribution is an operation *mixture*, so its upper percentiles
    can be dominated by a tiny sub-population (e.g. the rare
    video-upload path) — slicing compares like with like and lets the
    min-sample rule exclude sub-populations too small to estimate.
    """
    samples: Dict[str, List[float]] = {}
    for trace in traces:
        if not trace.ok or trace.start < start:
            continue
        samples.setdefault("(end-to-end)", []).append(trace.latency)
        for span in trace.root.walk():
            key = f"{span.service} [{trace.operation}]" \
                if by_operation else span.service
            samples.setdefault(key, []).append(span.duration)
    return {
        svc: {
            "samples": float(len(values)),
            "p50": _percentile(values, 0.50),
            "p95": _percentile(values, 0.95),
            "p99": _percentile(values, 0.99),
        }
        for svc, values in sorted(samples.items())
    }


@dataclass
class TierFidelity:
    """One tier's original-vs-clone percentile comparison.

    Only percentiles with enough samples on both sides appear in the
    dicts; ``within[p]`` records whether the drift cleared either the
    relative tolerance or the absolute floor.
    """

    service: str
    samples_original: int
    samples_clone: int
    original: Dict[str, float]
    clone: Dict[str, float]
    #: Relative drift |clone - original| / original per percentile.
    drift: Dict[str, float]
    within: Dict[str, bool] = field(default_factory=dict)

    def worst(self) -> float:
        return max(self.drift.values()) if self.drift else 0.0


@dataclass
class FidelityReport:
    """The clone-fidelity cross-validation verdict."""

    tiers: List[TierFidelity]
    tolerance: Dict[str, float]
    abs_floor_s: float = DEFAULT_ABS_FLOOR_S
    compared_tiers: int = 0
    skipped_tiers: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.tiers) and all(
            ok for tier in self.tiers for ok in tier.within.values())

    def worst_drift(self) -> float:
        return max((t.worst() for t in self.tiers), default=0.0)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "tolerance": dict(self.tolerance),
            "abs_floor_s": self.abs_floor_s,
            "worst_drift": round(self.worst_drift(), 4),
            "compared_tiers": self.compared_tiers,
            "skipped_tiers": list(self.skipped_tiers),
            "tiers": [
                {
                    "service": t.service,
                    "samples_original": t.samples_original,
                    "samples_clone": t.samples_clone,
                    "original": {p: round(v, 6)
                                 for p, v in t.original.items()},
                    "clone": {p: round(v, 6)
                              for p, v in t.clone.items()},
                    "drift": {p: round(v, 4)
                              for p, v in t.drift.items()},
                    "within": dict(t.within),
                }
                for t in self.tiers
            ],
        }

    def render(self) -> str:
        from ...stats.tables import format_table

        def cell(tier: TierFidelity, p: str) -> str:
            if p not in tier.original:
                return "-"
            mark = "" if tier.within.get(p, True) else " !"
            return (f"{tier.original[p] * 1e3:.2f} / "
                    f"{tier.clone[p] * 1e3:.2f}{mark}")

        rows = [[tier.service, cell(tier, "p50"), cell(tier, "p95"),
                 cell(tier, "p99"), f"{tier.worst():.1%}"]
                for tier in self.tiers]
        verdict = "within tolerance" if self.ok else "OUT OF TOLERANCE"
        return format_table(
            ["tier", "p50 orig/clone (ms)", "p95 orig/clone (ms)",
             "p99 orig/clone (ms)", "worst drift"], rows,
            title=f"clone fidelity: {verdict} "
                  f"(tolerance p50<={self.tolerance['p50']:.0%} "
                  f"p95<={self.tolerance['p95']:.0%} "
                  f"p99<={self.tolerance['p99']:.0%} "
                  f"or <={self.abs_floor_s * 1e3:g}ms absolute)")


def validate_clone(original_traces: Iterable[Trace],
                   clone: "CloneResult | Application",
                   qps: float, duration: float = 20.0,
                   n_machines: int = 4, seed: int = 1,
                   tolerance: Optional[Dict[str, float]] = None,
                   abs_floor_s: float = DEFAULT_ABS_FLOOR_S
                   ) -> FidelityReport:
    """Re-simulate the clone and compare per-tier percentile tables.

    Drive the clone at the same offered load the original export came
    from.  Tables are sliced per (tier, operation) so that the upper
    percentiles of an operation *mixture* are never compared — a rare
    heavyweight operation (ten video uploads in a sea of reads) would
    otherwise dominate a pooled tier's p95 while being far too thin to
    estimate.  Per row, each percentile with enough samples on both
    sides (:data:`PCTL_MIN_SAMPLES`) must land within the relative
    tolerance *or* the absolute floor; rows where not even p50 is
    comparable are skipped (reported, not compared).
    """
    from ...core.experiment import simulate
    from ...core.provisioning import balanced_provision
    app = clone.app if isinstance(clone, CloneResult) else clone
    tolerance = dict(tolerance or DEFAULT_TOLERANCE)
    replicas = balanced_provision(app, target_qps=max(qps * 1.5, 20))
    result = simulate(app, qps=qps, duration=duration,
                      n_machines=n_machines, replicas=replicas,
                      seed=seed)
    original = percentile_table(original_traces, by_operation=True)
    cloned = percentile_table(result.collector.traces,
                              start=result.warmup, by_operation=True)
    tiers: List[TierFidelity] = []
    skipped: List[str] = []
    for svc in sorted(original):
        if svc not in cloned:
            skipped.append(svc)
            continue
        orig_row, clone_row = original[svc], cloned[svc]
        n = min(orig_row["samples"], clone_row["samples"])
        compared = [p for p in ("p50", "p95", "p99")
                    if n >= PCTL_MIN_SAMPLES[p]]
        if not compared:
            skipped.append(svc)
            continue
        drift: Dict[str, float] = {}
        within: Dict[str, bool] = {}
        for p in compared:
            diff = abs(clone_row[p] - orig_row[p])
            drift[p] = diff / orig_row[p] if orig_row[p] > 0 else 0.0
            within[p] = diff <= abs_floor_s or drift[p] <= tolerance[p]
        tiers.append(TierFidelity(
            service=svc,
            samples_original=int(orig_row["samples"]),
            samples_clone=int(clone_row["samples"]),
            original={p: orig_row[p] for p in compared},
            clone={p: clone_row[p] for p in compared},
            drift=drift, within=within))
    return FidelityReport(tiers=tiers, tolerance=tolerance,
                          abs_floor_s=abs_floor_s,
                          compared_tiers=len(tiers),
                          skipped_tiers=skipped)
