"""Synthetic applications: parametric topology generation, trace-driven
cloning, and the scenario-matrix harness.

Three entry points, one per half of the subsystem:

* :func:`generate` builds a deterministic topology from
  :class:`GeneratorParams` (six patterns, arbitrary size, seeded);
  ``build_app("synth:mesh:n32:seed7")`` resolves the same thing by
  name through the registry.
* :func:`clone_from_traces` infers a matching application from an
  exported trace set, cross-validated by :func:`validate_clone`.
* :func:`run_matrix` sweeps patterns x sizes x seeds with baseline and
  chaos smoke runs into one byte-stable report.
"""

from .clone import (CloneConfig, CloneResult, FidelityReport,
                    clone_from_traces, load_traces, percentile_table,
                    validate_clone)
from .generator import (GeneratorParams, generate, parse_spec,
                        topology_json)
from .matrix import MatrixReport, MatrixSpec, run_matrix

__all__ = [
    "CloneConfig", "CloneResult", "FidelityReport", "GeneratorParams",
    "MatrixReport", "MatrixSpec", "clone_from_traces", "generate",
    "load_traces", "parse_spec", "percentile_table", "run_matrix",
    "topology_json", "validate_clone",
]
