"""The Media Service (Sec. 3.3, Fig. 5).

Browsing movie information, composing reviews, renting (with payment
authentication), and streaming movies over an nginx-hls tier backed by
NFS.  Movie metadata lives in a sharded/replicated MySQL database
(MovieDB); reviews in memcached + MongoDB.  38 unique microservices,
all downstream messages over Thrift RPC.
"""

from __future__ import annotations

from ..resilience.degrade import (
    CRIT_DEGRADABLE,
    CRIT_SHEDDABLE,
    DegradationPolicy,
)
from ..services.app import Application, Operation, Protocol
from ..services.calltree import CallNode, par, seq
from ..services.datastores import (
    memcached,
    mongodb,
    mysql,
    nfs_store,
    nginx,
    php_fpm,
    recommender,
    search_index,
    xapian_search,
)
from ..services.definition import ServiceDefinition, ServiceKind

__all__ = ["build_media_service", "MEDIA_SERVICE_QOS"]

MEDIA_SERVICE_QOS = 0.02


def _logic(name: str, language: str, work_us: float,
           cv: float = 0.5, **traits) -> ServiceDefinition:
    svc = ServiceDefinition(name=name, language=language,
                            kind=ServiceKind.LOGIC,
                            work_mean=work_us * 1e-6, work_cv=cv)
    return svc.with_traits(**traits) if traits else svc


def _services() -> dict:
    """All 38 unique microservices of Fig. 5."""
    defs = [
        nginx("nginx-lb", work_mean=40e-6),
        nginx("nginx-web"),
        php_fpm("php-fpm"),
        # Page / review composition.
        _logic("composePage", "c++", 200),
        _logic("composeReview", "c++", 170),
        _logic("userReview", "java", 120),
        _logic("movieReview", "java", 120),
        _logic("reviewStorage", "c++", 110),
        _logic("text-rating", "c++", 60),
        _logic("uniqueID", "c++", 15, icache_footprint_kb=30,
               memory_locality=0.9),
        _logic("movieID", "c++", 50),
        _logic("rating", "scala", 80),
        # Movie info tiers.
        _logic("plot", "java", 90),
        _logic("cast", "java", 90),
        _logic("photos", "c++", 250, memory_locality=0.5),
        _logic("videos", "c++", 400, memory_locality=0.45),
        _logic("thumbnail", "c++", 150),
        # Account / payment / rental.
        _logic("login", "go", 110),
        _logic("userInfo", "go", 70),
        _logic("rent", "java", 200),
        _logic("payment-auth", "java", 450, cv=0.7),
        # Streaming.
        _logic("video-streaming", "c", 180,
               icache_footprint_kb=130, kernel_share=0.6),
        # Plugins.
        _logic("ads", "python", 700, memory_locality=0.3),
        recommender("recommender"),
        xapian_search("search"),
        search_index("index0"),
        search_index("index1"),
        search_index("index2"),
        # Backends.
        memcached("mc-reviews"),
        memcached("mc-movieinfo"),
        memcached("mc-userinfo"),
        memcached("mc-media"),
        mongodb("mongo-reviews"),
        mongodb("mongo-userinfo"),
        mongodb("mongo-media"),
        mysql("moviedb-shard0"),
        mysql("moviedb-shard1"),
        nfs_store("nfs-videos"),
    ]
    return {svc.name: svc for svc in defs}


def _entry(groups) -> CallNode:
    return CallNode(
        service="nginx-lb", request_kb=1.0, response_kb=2.0,
        groups=seq(CallNode(
            service="nginx-web",
            groups=seq(CallNode(service="php-fpm", groups=groups)))))


def _cached(cache: str, store: str, miss_scale: float,
            response_kb: float = 2.0) -> CallNode:
    return CallNode(service=cache, request_kb=0.3, response_kb=response_kb,
                    groups=seq(CallNode(service=store,
                                        work_scale=miss_scale,
                                        response_kb=response_kb)))


def _browse_movie() -> Operation:
    """Browse a movie page: plot, cast, photos, reviews, ads, recs."""
    root = _entry(seq(CallNode(
        service="composePage", response_kb=40.0,
        groups=[
            [CallNode(service="movieID",
                      groups=seq(_cached("mc-movieinfo", "moviedb-shard0",
                                         0.3)))],
            [CallNode(service="plot",
                      groups=seq(_cached("mc-movieinfo", "moviedb-shard1",
                                         0.3))),
             CallNode(service="cast",
                      groups=seq(_cached("mc-movieinfo", "moviedb-shard0",
                                         0.3))),
             CallNode(service="photos", response_kb=150.0,
                      groups=seq(_cached("mc-media", "mongo-media", 0.4,
                                         response_kb=150.0))),
             CallNode(service="videos", response_kb=80.0,
                      groups=seq(_cached("mc-media", "mongo-media", 0.3,
                                         response_kb=80.0))),
             CallNode(service="thumbnail", response_kb=30.0),
             CallNode(service="movieReview",
                      groups=seq(_cached("mc-reviews", "mongo-reviews",
                                         0.3))),
             # Amortized ad/recommendation inference per page view.
             CallNode(service="ads", work_scale=0.3),
             CallNode(service="recommender", work_scale=0.2)],
        ])))
    return Operation(name="browseMovie", root=root)


def _compose_review() -> Operation:
    root = _entry(seq(CallNode(
        service="composeReview",
        groups=[
            [CallNode(service="login",
                      groups=seq(_cached("mc-userinfo", "mongo-userinfo",
                                         0.2)))],
            [CallNode(service="text-rating"),
             CallNode(service="uniqueID"),
             CallNode(service="movieID",
                      groups=seq(_cached("mc-movieinfo", "moviedb-shard0",
                                         0.3)))],
            [CallNode(service="reviewStorage",
                      groups=seq(_cached("mc-reviews", "mongo-reviews",
                                         1.0)))],
            [CallNode(service="userReview"),
             CallNode(service="movieReview"),
             CallNode(service="rating")],
        ])))
    return Operation(name="composeReview", root=root)


def _rent_movie() -> Operation:
    """Rent: login, payment auth, then start the HLS stream."""
    root = _entry(seq(
        CallNode(service="login",
                 groups=seq(_cached("mc-userinfo", "mongo-userinfo", 0.2))),
        CallNode(service="userInfo",
                 groups=seq(_cached("mc-userinfo", "mongo-userinfo", 0.3))),
        CallNode(service="rent", groups=[
            [CallNode(service="payment-auth")],
            [CallNode(service="video-streaming", response_kb=512.0,
                      groups=seq(CallNode(service="nfs-videos",
                                          response_kb=512.0)))],
        ])))
    return Operation(name="rentMovie", root=root)


def _stream_chunk() -> Operation:
    """Fetch one HLS segment of an in-progress stream."""
    root = CallNode(
        service="nginx-lb", request_kb=0.5, response_kb=2.0,
        groups=seq(CallNode(
            service="video-streaming", response_kb=1024.0,
            groups=seq(CallNode(service="nfs-videos",
                                response_kb=1024.0)))))
    return Operation(name="streamChunk", root=root)


def _search_movies() -> Operation:
    root = _entry(seq(CallNode(
        service="search",
        groups=par(CallNode(service="index0"),
                   CallNode(service="index1"),
                   CallNode(service="index2")))))
    return Operation(name="searchMovies", root=root)


def _login_op() -> Operation:
    root = _entry(seq(CallNode(
        service="login",
        groups=seq(_cached("mc-userinfo", "mongo-userinfo", 0.2)))))
    return Operation(name="login", root=root)


def build_media_service() -> Application:
    """Construct the Media Service application."""
    operations = {}
    for op in [_browse_movie(), _compose_review(), _rent_movie(),
               _stream_chunk(), _search_movies(), _login_op()]:
        operations[op.name] = op
    weights = {
        "browseMovie": 45.0,
        "composeReview": 10.0,
        "rentMovie": 5.0,
        "streamChunk": 25.0,
        "searchMovies": 10.0,
        "login": 5.0,
    }
    for name, weight in weights.items():
        operations[name].weight = weight
    # Criticality: paid actions (rent, review, login) and in-flight
    # streams stay critical; browsing degrades; search sheds first.
    operations["browseMovie"].criticality = CRIT_DEGRADABLE
    operations["searchMovies"].criticality = CRIT_SHEDDABLE

    degradation_policies = {
        "ads": DegradationPolicy(
            service="ads", optional=True, drop_level=1,
            fallback="default", fidelity_cost=0.05),
        "recommender": DegradationPolicy(
            service="recommender", optional=True, drop_level=1,
            fallback="default", fidelity_cost=0.05),
        # A browse page without photos/videos is still a page.
        "photos": DegradationPolicy(
            service="photos", optional=True, drop_level=2,
            fidelity_cost=0.1),
        "videos": DegradationPolicy(
            service="videos", optional=True, drop_level=2,
            fidelity_cost=0.1),
        "mc-movieinfo": DegradationPolicy(
            service="mc-movieinfo", fallback="stale_cache",
            fidelity_cost=0.15),
        "mc-reviews": DegradationPolicy(
            service="mc-reviews", fallback="stale_cache",
            fidelity_cost=0.15),
        "index0": DegradationPolicy(
            service="index0", fanout_keep=1, fanout_level=1,
            fidelity_cost=0.2),
        "index1": DegradationPolicy(
            service="index1", fanout_keep=1, fanout_level=1,
            fidelity_cost=0.2),
        "index2": DegradationPolicy(
            service="index2", fanout_keep=1, fanout_level=1,
            fidelity_cost=0.2),
        # Payment authorization is sacrosanct (DEG002 keeps it out of
        # any droppable subtree).
        "payment-auth": DegradationPolicy(
            service="payment-auth", never_drop=True),
    }

    return Application(
        name="media_service",
        services=_services(),
        operations=operations,
        protocol=Protocol.RPC,
        qos_latency=MEDIA_SERVICE_QOS,
        entry_service="nginx-lb",
        sharded_services=["moviedb-shard0", "moviedb-shard1"],
        degradation_policies=degradation_policies,
        metadata={
            "paper_table1": {
                "total_locs": 12155,
                "protocol": "RPC",
                "handwritten_rpc_locs": 9853,
                "autogen_rpc_locs": 48001,
                "unique_microservices": 38,
                "language_share": {
                    "c": 0.30, "c++": 0.21, "java": 0.20, "php": 0.10,
                    "scala": 0.08, "node.js": 0.05, "python": 0.03,
                    "javascript": 0.03,
                },
            },
        },
    )
