"""The Social Network end-to-end service (Sec. 3.2, Fig. 4).

A broadcast-style social network with uni-directional follow
relationships: 36 unique microservices behind an nginx load balancer
and php-fpm bridge, all inter-service messages over Thrift RPC, with
memcached caches in front of MongoDB stores, a Xapian-backed search
tier, and ML plugins (ads, user recommender).

Operations follow Sec. 3.8's query-diversity notes: ``composePost``
variants embed text, image, or video media (video payloads of a few MB,
as in production social networks); ``repost`` is the longest query type
(read an existing post, prepend, then propagate to followers'
timelines); reads dominate the default mix.
"""

from __future__ import annotations

from ..resilience.degrade import (
    CRIT_DEGRADABLE,
    CRIT_SHEDDABLE,
    DegradationPolicy,
)
from ..services.app import Application, Operation, Protocol
from ..services.calltree import CallNode, par, seq
from ..services.datastores import (
    memcached,
    mongodb,
    nginx,
    php_fpm,
    recommender,
    search_index,
    xapian_search,
)
from ..services.definition import ServiceDefinition, ServiceKind

__all__ = ["build_social_network", "SOCIAL_NETWORK_QOS"]

#: End-to-end p99 target; the paper reports ~3.8 ms end-to-end latency
#: at moderate load, and QoS experiments use small-multiple targets.
SOCIAL_NETWORK_QOS = 0.015


def _logic(name: str, language: str, work_us: float,
           cv: float = 0.5, **traits) -> ServiceDefinition:
    svc = ServiceDefinition(name=name, language=language,
                            kind=ServiceKind.LOGIC,
                            work_mean=work_us * 1e-6, work_cv=cv)
    return svc.with_traits(**traits) if traits else svc


def _services() -> dict:
    """All 36 unique microservices of Fig. 4."""
    defs = [
        nginx("nginx-lb", work_mean=40e-6),
        nginx("nginx-web"),
        php_fpm("php-fpm"),
        # Post composition pipeline.
        _logic("composePost", "c++", 180),
        _logic("text", "c++", 60, memory_locality=0.8),
        _logic("image", "c++", 350, memory_locality=0.5),
        _logic("video", "c++", 900, memory_locality=0.45),
        _logic("userTag", "java", 90),
        _logic("urlShorten", "c++", 40, icache_footprint_kb=36),
        _logic("uniqueID", "c++", 15, icache_footprint_kb=30,
               memory_locality=0.9),
        # Timeline / graph fabric.
        _logic("postsStorage", "c++", 120),
        _logic("writeTimeline", "java", 150),
        _logic("writeGraph", "java", 160),
        _logic("readTimeline", "java", 130),
        _logic("readPost", "c++", 80),
        _logic("blockedUsers", "java", 50),
        # Account services.
        _logic("login", "go", 110),
        _logic("userInfo", "go", 70),
        _logic("favorite", "scala", 60),
        _logic("followUser", "scala", 90),
        # Plugins.
        _logic("ads", "python", 700, memory_locality=0.3),
        recommender("recommender"),
        xapian_search("search"),
        search_index("index0"),
        search_index("index1"),
        search_index("index2"),
        # Backend caches and stores (one pair per stateful domain).
        memcached("mc-posts"),
        memcached("mc-timeline"),
        memcached("mc-userinfo"),
        memcached("mc-graph"),
        memcached("mc-media"),
        mongodb("mongo-posts"),
        mongodb("mongo-timeline"),
        mongodb("mongo-userinfo"),
        mongodb("mongo-graph"),
        mongodb("mongo-media"),
    ]
    return {svc.name: svc for svc in defs}


def _entry(groups) -> CallNode:
    """Client -> nginx LB -> nginx webserver -> php-fpm -> Thrift tiers."""
    return CallNode(
        service="nginx-lb", request_kb=1.0, response_kb=2.0,
        groups=seq(CallNode(
            service="nginx-web",
            groups=seq(CallNode(service="php-fpm", groups=groups)))))


def _cached_read(cache: str, store: str, miss_scale: float = 1.0,
                 response_kb: float = 2.0) -> CallNode:
    """A cache lookup followed by a (scaled) store access.

    The store node's ``work_scale`` bakes in the cache miss ratio: with
    a 30 % miss rate the store sees 0.3x its per-query work on average.
    """
    return CallNode(service=cache, request_kb=0.3, response_kb=response_kb,
                    groups=seq(CallNode(service=store,
                                        work_scale=miss_scale,
                                        request_kb=0.3,
                                        response_kb=response_kb)))


def _compose_post(media_service: str, media_kb: float) -> Operation:
    """composePost with a given embedded media type."""
    media_node = CallNode(service=media_service, request_kb=media_kb,
                          response_kb=1.0)
    if media_service in ("image", "video"):
        # Media payloads are persisted in the media store.
        media_node.groups = seq(
            _cached_read("mc-media", "mongo-media", miss_scale=1.0,
                         response_kb=1.0))
    root = _entry(seq(CallNode(
        service="composePost", request_kb=media_kb + 1.0,
        groups=[
            # Stage 1: process constituents in parallel.
            [CallNode(service="text",
                      groups=par(CallNode(service="urlShorten"),
                                 CallNode(service="userTag"))),
             media_node,
             CallNode(service="uniqueID")],
            # Stage 2: store the post, then fan out to timelines.
            [CallNode(service="postsStorage",
                      groups=seq(_cached_read("mc-posts", "mongo-posts",
                                              miss_scale=1.0)))],
            [CallNode(service="writeTimeline",
                      groups=seq(_cached_read("mc-timeline",
                                              "mongo-timeline"))),
             CallNode(service="writeGraph",
                      groups=seq(_cached_read("mc-graph", "mongo-graph",
                                              miss_scale=0.5)))],
        ])))
    return Operation(name=f"composePost-{media_service}", root=root)


def _read_timeline() -> Operation:
    root = _entry(seq(CallNode(
        service="readTimeline", response_kb=12.0,
        groups=[
            [CallNode(service="blockedUsers")],
            [_cached_read("mc-timeline", "mongo-timeline",
                          miss_scale=0.3, response_kb=12.0)],
            [CallNode(service="readPost", response_kb=10.0,
                      groups=seq(_cached_read("mc-posts", "mongo-posts",
                                              miss_scale=0.3,
                                              response_kb=10.0))),
             # Ads and recommendations are served from amortized,
             # periodically refreshed models: a fraction of their full
             # inference cost per timeline read.
             CallNode(service="ads", work_scale=0.3),
             CallNode(service="recommender", work_scale=0.2)],
        ])))
    return Operation(name="readTimeline", root=root)


def _repost() -> Operation:
    """Read an existing post, prepend, and propagate — the longest
    query type in the Social Network (Sec. 3.8)."""
    root = _entry(seq(
        CallNode(service="readPost",
                 groups=seq(_cached_read("mc-posts", "mongo-posts",
                                         miss_scale=0.3))),
        CallNode(service="composePost", groups=[
            [CallNode(service="text"), CallNode(service="uniqueID")],
            [CallNode(service="postsStorage",
                      groups=seq(_cached_read("mc-posts", "mongo-posts")))],
            # Broadcast: the repost fans out to all the followers'
            # timelines, which is what makes it the longest query type.
            [CallNode(service="writeTimeline", work_scale=10.0,
                      groups=seq(_cached_read("mc-timeline",
                                              "mongo-timeline",
                                              miss_scale=5.0))),
             CallNode(service="writeGraph",
                      groups=seq(_cached_read("mc-graph", "mongo-graph",
                                              miss_scale=0.5)))],
        ])))
    return Operation(name="repost", root=root)


def _login() -> Operation:
    root = _entry(seq(CallNode(
        service="login",
        groups=seq(_cached_read("mc-userinfo", "mongo-userinfo",
                                miss_scale=0.2)))))
    return Operation(name="login", root=root)


def _user_info() -> Operation:
    root = _entry(seq(CallNode(
        service="userInfo",
        groups=seq(_cached_read("mc-userinfo", "mongo-userinfo",
                                miss_scale=0.3)))))
    return Operation(name="userInfo", root=root)


def _follow() -> Operation:
    root = _entry(seq(CallNode(
        service="followUser", groups=[
            [CallNode(service="blockedUsers")],
            [CallNode(service="writeGraph",
                      groups=seq(_cached_read("mc-graph", "mongo-graph",
                                              miss_scale=0.6)))],
        ])))
    return Operation(name="followUser", root=root)


def _favorite() -> Operation:
    root = _entry(seq(CallNode(
        service="favorite",
        groups=seq(_cached_read("mc-posts", "mongo-posts",
                                miss_scale=0.2)))))
    return Operation(name="favorite", root=root)


def _search() -> Operation:
    root = _entry(seq(CallNode(
        service="search",
        groups=par(CallNode(service="index0"),
                   CallNode(service="index1"),
                   CallNode(service="index2")))))
    return Operation(name="search", root=root)


def build_social_network() -> Application:
    """Construct the Social Network application."""
    operations = {}
    for op in [
        _compose_post("text", 1.0),        # text-only post
        _compose_post("image", 200.0),     # post with an image
        _compose_post("video", 2048.0),    # post with a short video
        _read_timeline(),
        _repost(),
        _login(),
        _user_info(),
        _follow(),
        _favorite(),
        _search(),
    ]:
        operations[op.name] = op
    # Read-heavy default mix, as in a broadcast social network.
    weights = {
        "readTimeline": 55.0,
        "composePost-text": 10.0,
        "composePost-image": 4.0,
        "composePost-video": 1.0,
        "repost": 5.0,
        "login": 5.0,
        "userInfo": 10.0,
        "followUser": 3.0,
        "favorite": 5.0,
        "search": 2.0,
    }
    for name, weight in weights.items():
        operations[name].weight = weight
    # Criticality tiers: writes and account actions must survive an
    # incident at full strength; timeline/profile reads tolerate
    # missing optional content; search is first against the wall.
    for name in ("readTimeline", "userInfo", "favorite"):
        operations[name].criticality = CRIT_DEGRADABLE
    operations["search"].criticality = CRIT_SHEDDABLE

    degradation_policies = {
        # Ads and recommendations are revenue, not correctness: the
        # first subtrees to go under brownout, with an empty-payload
        # default response.
        "ads": DegradationPolicy(
            service="ads", optional=True, drop_level=1,
            fallback="default", fidelity_cost=0.05),
        "recommender": DegradationPolicy(
            service="recommender", optional=True, drop_level=1,
            fallback="default", fidelity_cost=0.05),
        # Timeline/post caches may serve their last value when the
        # subtree behind them melts; the mongo tiers are region-
        # replicated (service_regions), so a stale answer exists.
        "mc-timeline": DegradationPolicy(
            service="mc-timeline", fallback="stale_cache",
            fidelity_cost=0.15),
        "mc-posts": DegradationPolicy(
            service="mc-posts", fallback="stale_cache",
            fidelity_cost=0.15),
        # The timeline store carries the heaviest read traffic in the
        # mix; under deep brownout, degradable reads stop refreshing
        # through it and serve cache-only (drop the store subtree
        # behind mc-timeline).  Critical writes never drop it — their
        # class-effective level cannot reach drop_level.
        "mongo-timeline": DegradationPolicy(
            service="mongo-timeline", optional=True, drop_level=2,
            fallback="stale_cache", fidelity_cost=0.2),
        "mongo-posts": DegradationPolicy(
            service="mongo-posts", fallback="stale_cache",
            fidelity_cost=0.2),
        # Search results degrade to fewer shards before they disappear.
        "index0": DegradationPolicy(
            service="index0", fanout_keep=1, fanout_level=1,
            fidelity_cost=0.2),
        "index1": DegradationPolicy(
            service="index1", fanout_keep=1, fanout_level=1,
            fidelity_cost=0.2),
        "index2": DegradationPolicy(
            service="index2", fanout_keep=1, fanout_level=1,
            fidelity_cost=0.2),
        # Safety check: content moderation must never be skipped, no
        # matter how deep the brownout (lint rule DEG002 enforces it
        # stays outside every droppable subtree).
        "blockedUsers": DegradationPolicy(
            service="blockedUsers", never_drop=True),
    }

    return Application(
        name="social_network",
        services=_services(),
        operations=operations,
        protocol=Protocol.RPC,
        qos_latency=SOCIAL_NETWORK_QOS,
        entry_service="nginx-lb",
        sharded_services=["mc-timeline", "mongo-timeline", "readTimeline",
                          "writeTimeline"],
        # Multi-region footprint: every tier is deployed in every
        # region; the mongo tiers are single-primary in us-east, so a
        # failed-over read in another region can observe replication
        # lag (the stale reads the region scorecard counts).
        regions=["us-east", "eu-west"],
        service_regions={
            "mongo-posts": "us-east",
            "mongo-userinfo": "us-east",
            "mongo-media": "us-east",
            "mongo-timeline": "us-east",
            "mongo-graph": "us-east",
        },
        degradation_policies=degradation_policies,
        metadata={
            "paper_table1": {
                "total_locs": 15198,
                "protocol": "RPC",
                "handwritten_rpc_locs": 9286,
                "autogen_rpc_locs": 52863,
                "unique_microservices": 36,
                "language_share": {
                    "c": 0.34, "c++": 0.23, "java": 0.18, "node.js": 0.07,
                    "python": 0.06, "scala": 0.05, "php": 0.03,
                    "javascript": 0.02, "go": 0.02,
                },
            },
        },
    )
