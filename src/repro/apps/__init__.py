"""The DeathStarBench application suite (Sec. 3), plus the synthetic
generator/cloner namespace (:mod:`repro.apps.synth`)."""

from .banking import build_banking
from .ecommerce import build_ecommerce
from .media_service import build_media_service
from .registry import (APP_BUILDERS, app_names, build_app,
                       build_monolith, register_app, reset_registry,
                       unregister_app)
from .social_network import build_social_network
from .swarm import build_swarm_cloud, build_swarm_edge

__all__ = [
    "APP_BUILDERS",
    "app_names",
    "build_app",
    "build_banking",
    "build_ecommerce",
    "build_media_service",
    "build_monolith",
    "build_social_network",
    "build_swarm_cloud",
    "build_swarm_edge",
    "register_app",
    "reset_registry",
    "unregister_app",
]
