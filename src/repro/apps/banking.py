"""The Banking System (Sec. 3.5, Fig. 7).

A secure banking service: a node.js front-end (like E-commerce), Java
and Javascript logic tiers for payments, loans, credit cards, and
wealth management, an ACL/authentication path on every mutating
request, memcached + MongoDB backends, and a relational BankInfoDB.
34 unique microservices over Thrift RPC.

Per Sec. 7, ``payments`` and ``authentication`` dominate end-to-end
latency, and the service is more compute-intensive (more user-mode
time) than the Social Network — its services are written in high-level
managed languages and do real work per request.
"""

from __future__ import annotations

from ..resilience.degrade import (
    CRIT_DEGRADABLE,
    CRIT_SHEDDABLE,
    DegradationPolicy,
)
from ..services.app import Application, Operation, Protocol
from ..services.calltree import CallNode, par, seq
from ..services.datastores import (
    memcached,
    mongodb,
    mysql,
    node_frontend,
    search_index,
    xapian_search,
)
from ..services.definition import ServiceDefinition, ServiceKind

__all__ = ["build_banking", "BANKING_QOS"]

BANKING_QOS = 0.04


def _logic(name: str, language: str, work_us: float,
           cv: float = 0.5, **traits) -> ServiceDefinition:
    svc = ServiceDefinition(name=name, language=language,
                            kind=ServiceKind.LOGIC,
                            work_mean=work_us * 1e-6, work_cv=cv)
    return svc.with_traits(**traits) if traits else svc


def _services() -> dict:
    """All 34 unique microservices of Fig. 7."""
    defs = [
        node_frontend("front-end"),
        # Security path.
        _logic("authentication", "java", 500, cv=0.6),
        _logic("ACL", "java", 180),
        # Payments.
        _logic("payments", "java", 650, cv=0.7),
        _logic("transactionPosting", "java", 300),
        _logic("customerActivity", "javascript", 150),
        _logic("customerInfo", "javascript", 120),
        # Accounts.
        _logic("openAccount", "java", 400),
        _logic("depositAccount", "java", 250),
        _logic("investmentAccount", "java", 350),
        # Lending.
        _logic("personalLending", "java", 480),
        _logic("businessLending", "java", 520),
        _logic("mortgages", "java", 450),
        # Cards.
        _logic("creditCard", "javascript", 280),
        _logic("openCreditCard", "javascript", 350),
        # Wealth management.
        _logic("wealthMgmt", "java", 600, cv=0.6),
        # Marketing / info.
        _logic("ads", "python", 700, memory_locality=0.3),
        _logic("offerBanners", "javascript", 130),
        _logic("userPreferences", "node.js", 90),
        _logic("contact", "node.js", 70),
        _logic("media", "node.js", 200),
        # Search.
        xapian_search("search"),
        search_index("index0"),
        search_index("index1"),
        search_index("index2"),
        # Backends.
        memcached("mc-customer"),
        memcached("mc-accounts"),
        memcached("mc-offers"),
        memcached("mc-wealth"),
        mongodb("mongo-customer"),
        mongodb("mongo-accounts"),
        mongodb("mongo-transactions"),
        mysql("bankInfoDB"),
        mysql("offerDB"),
    ]
    return {svc.name: svc for svc in defs}


def _front(groups) -> CallNode:
    return CallNode(service="front-end", request_kb=1.5, response_kb=6.0,
                    groups=groups)


def _cached(cache: str, store: str, miss_scale: float) -> CallNode:
    return CallNode(service=cache, request_kb=0.3,
                    groups=seq(CallNode(service=store,
                                        work_scale=miss_scale)))


def _auth_chain() -> list:
    """Authentication + ACL precede every mutating operation."""
    return [CallNode(service="authentication",
                     groups=seq(_cached("mc-customer", "mongo-customer",
                                        0.2))),
            CallNode(service="ACL")]


def _process_payment() -> Operation:
    """Pay from an account: auth → ACL → payments → posting +
    activity log (dominates latency and sets the saturation point)."""
    root = _front(seq(
        *_auth_chain(),
        CallNode(service="payments", groups=[
            [CallNode(service="customerInfo",
                      groups=seq(_cached("mc-customer", "mongo-customer",
                                         0.3)))],
            [CallNode(service="transactionPosting",
                      groups=seq(CallNode(service="mongo-transactions"))),
             CallNode(service="customerActivity",
                      groups=seq(CallNode(service="mongo-customer",
                                          work_scale=0.5)))],
        ])))
    return Operation(name="processPayment", root=root)


def _pay_credit_card() -> Operation:
    root = _front(seq(
        *_auth_chain(),
        CallNode(service="creditCard", groups=seq(
            CallNode(service="payments",
                     groups=seq(CallNode(service="transactionPosting",
                                         groups=seq(CallNode(
                                             service="mongo-transactions"
                                         ))))),
        ))))
    return Operation(name="payCreditCard", root=root)


def _request_loan() -> Operation:
    root = _front(seq(
        *_auth_chain(),
        CallNode(service="personalLending", groups=[
            [CallNode(service="customerInfo",
                      groups=seq(_cached("mc-customer", "mongo-customer",
                                         0.3))),
             CallNode(service="customerActivity")],
            [CallNode(service="mortgages"),
             CallNode(service="businessLending", work_scale=0.3)],
            [CallNode(service="mongo-accounts")],
        ])))
    return Operation(name="requestLoan", root=root)


def _open_account() -> Operation:
    root = _front(seq(
        *_auth_chain(),
        CallNode(service="openAccount", groups=seq(
            CallNode(service="depositAccount"),
            _cached("mc-accounts", "mongo-accounts", 1.0),
        ))))
    return Operation(name="openAccount", root=root)


def _open_credit_card() -> Operation:
    root = _front(seq(
        *_auth_chain(),
        CallNode(service="openCreditCard", groups=seq(
            CallNode(service="customerInfo",
                     groups=seq(_cached("mc-customer", "mongo-customer",
                                        0.3))),
            CallNode(service="creditCard"),
            _cached("mc-accounts", "mongo-accounts", 1.0),
        ))))
    return Operation(name="openCreditCard", root=root)


def _wealth_mgmt() -> Operation:
    root = _front(seq(
        *_auth_chain(),
        CallNode(service="wealthMgmt", groups=[
            [CallNode(service="investmentAccount"),
             _cached("mc-wealth", "mongo-accounts", 0.4)],
        ])))
    return Operation(name="wealthMgmt", root=root)


def _browse_info() -> Operation:
    """Unauthenticated browsing: bank info, offers, contact, search."""
    root = _front([
        [CallNode(service="offerBanners",
                  groups=seq(_cached("mc-offers", "offerDB", 0.3))),
         CallNode(service="contact",
                  groups=seq(CallNode(service="bankInfoDB",
                                      work_scale=0.5))),
         CallNode(service="userPreferences"),
         CallNode(service="ads"),
         CallNode(service="media")],
    ])
    return Operation(name="browseInfo", root=root)


def _search_bank() -> Operation:
    root = _front(seq(CallNode(
        service="search",
        groups=par(CallNode(service="index0"),
                   CallNode(service="index1"),
                   CallNode(service="index2")))))
    return Operation(name="searchBank", root=root)


def build_banking() -> Application:
    """Construct the Banking application."""
    operations = {}
    for op in [_process_payment(), _pay_credit_card(), _request_loan(),
               _open_account(), _open_credit_card(), _wealth_mgmt(),
               _browse_info(), _search_bank()]:
        operations[op.name] = op
    weights = {
        "processPayment": 30.0,
        "payCreditCard": 13.0,
        "requestLoan": 8.0,
        "openAccount": 4.0,
        "openCreditCard": 2.0,
        "wealthMgmt": 8.0,
        "browseInfo": 30.0,
        "searchBank": 5.0,
    }
    for name, weight in weights.items():
        operations[name].weight = weight
    # Criticality: money movement and account opening are critical;
    # unauthenticated browsing degrades; search sheds first.
    operations["browseInfo"].criticality = CRIT_DEGRADABLE
    operations["searchBank"].criticality = CRIT_SHEDDABLE

    degradation_policies = {
        "ads": DegradationPolicy(
            service="ads", optional=True, drop_level=1,
            fallback="default", fidelity_cost=0.05),
        "offerBanners": DegradationPolicy(
            service="offerBanners", optional=True, drop_level=1,
            fallback="default", fidelity_cost=0.05),
        "media": DegradationPolicy(
            service="media", optional=True, drop_level=2,
            fidelity_cost=0.1),
        "mc-customer": DegradationPolicy(
            service="mc-customer", fallback="stale_cache",
            fidelity_cost=0.15),
        "mc-offers": DegradationPolicy(
            service="mc-offers", fallback="stale_cache",
            fidelity_cost=0.15),
        "index0": DegradationPolicy(
            service="index0", fanout_keep=1, fanout_level=1,
            fidelity_cost=0.2),
        "index1": DegradationPolicy(
            service="index1", fanout_keep=1, fanout_level=1,
            fidelity_cost=0.2),
        "index2": DegradationPolicy(
            service="index2", fanout_keep=1, fanout_level=1,
            fidelity_cost=0.2),
        # The auth/ACL chain guards every mutating request; it must
        # never sit inside a droppable subtree (DEG002).
        "authentication": DegradationPolicy(
            service="authentication", never_drop=True),
        "ACL": DegradationPolicy(service="ACL", never_drop=True),
    }

    return Application(
        name="banking",
        services=_services(),
        operations=operations,
        protocol=Protocol.RPC,
        qos_latency=BANKING_QOS,
        entry_service="front-end",
        sharded_services=["mongo-customer"],
        degradation_policies=degradation_policies,
        metadata={
            "paper_table1": {
                "total_locs": 13876,
                "protocol": "RPC",
                "handwritten_rpc_locs": 4757,
                "autogen_rpc_locs": 31156,
                "unique_microservices": 34,
                "language_share": {
                    "c": 0.29, "javascript": 0.25, "java": 0.16,
                    "node.js": 0.16, "c++": 0.11, "python": 0.03,
                },
            },
        },
    )
