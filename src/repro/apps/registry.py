"""Application registry: the six end-to-end services plus monoliths.

Every graph handed out by :func:`build_app` is statically validated by
:mod:`repro.analysis_static.topology` first, so a malformed call tree
(cycle, dangling downstream, dead tier, zero capacity) fails at
registration with a rule-coded report instead of a runtime ``KeyError``
deep inside the deployment layer.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..analysis_static.rules import Severity
from ..analysis_static.topology import TopologyError, validate_app
from ..services.app import Application
from ..services.monolith import monolithify
from .banking import build_banking
from .ecommerce import build_ecommerce
from .media_service import build_media_service
from .social_network import build_social_network
from .swarm import build_swarm_cloud, build_swarm_edge

__all__ = ["APP_BUILDERS", "build_app", "app_names", "build_monolith"]

APP_BUILDERS: Dict[str, Callable[[], Application]] = {
    "social_network": build_social_network,
    "media_service": build_media_service,
    "ecommerce": build_ecommerce,
    "banking": build_banking,
    "swarm_cloud": build_swarm_cloud,
    "swarm_edge": build_swarm_edge,
}


def app_names() -> List[str]:
    """Names of all end-to-end applications in the suite."""
    return list(APP_BUILDERS.keys())


#: Builders already known to produce a structurally valid graph, so
#: repeated build_app calls (sweeps, tests) validate only once.
_VALIDATED: Dict[str, bool] = {}


def build_app(name: str) -> Application:
    """Construct an application by name, validating its topology."""
    try:
        builder = APP_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown application {name!r}; choose from {app_names()}"
        ) from None
    app = builder()
    if not _VALIDATED.get(name):
        errors = [f for f in validate_app(app)
                  if f.severity == Severity.ERROR]
        if errors:
            raise TopologyError(name, errors)
        _VALIDATED[name] = True
    return app


def build_monolith(name: str) -> Application:
    """Construct the monolithic counterpart of a suite application."""
    return monolithify(build_app(name))
