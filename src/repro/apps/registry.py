"""Application registry: the six end-to-end services plus monoliths,
dynamically registered apps, and parameterized generator specs.

Every graph handed out by :func:`build_app` is statically validated by
:mod:`repro.analysis_static.topology` first, so a malformed call tree
(cycle, dangling downstream, dead tier, zero capacity) fails at
registration with a rule-coded report instead of a runtime ``KeyError``
deep inside the deployment layer.

Beyond the built-ins, two more name spaces resolve through
:func:`build_app`:

* **Dynamic registrations** (:func:`register_app`) — cloned or
  test-constructed applications under caller-chosen names.  Duplicate
  registration raises instead of silently overwriting; use
  :func:`unregister_app` (or :func:`reset_registry`) first.
* **Generator specs** — names of the form ``synth:PATTERN:nSIZE:seedSEED``
  (e.g. ``synth:mesh:n32:seed7``) build a deterministic synthetic
  topology on the fly via :mod:`repro.apps.synth`; nothing is stored
  beyond the validated-graph cache, which :func:`unregister_app`
  also clears.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..analysis_static.rules import Severity
from ..analysis_static.topology import TopologyError, validate_app
from ..services.app import Application
from ..services.monolith import monolithify
from .banking import build_banking
from .ecommerce import build_ecommerce
from .media_service import build_media_service
from .social_network import build_social_network
from .swarm import build_swarm_cloud, build_swarm_edge

__all__ = ["APP_BUILDERS", "build_app", "app_names", "build_monolith",
           "register_app", "unregister_app", "reset_registry"]

APP_BUILDERS: Dict[str, Callable[[], Application]] = {
    "social_network": build_social_network,
    "media_service": build_media_service,
    "ecommerce": build_ecommerce,
    "banking": build_banking,
    "swarm_cloud": build_swarm_cloud,
    "swarm_edge": build_swarm_edge,
}

#: Applications registered at runtime (clones, test fixtures); kept
#: separate from the built-ins so the suite's canonical set stays
#: stable and :func:`reset_registry` has an obvious scope.
_DYNAMIC_BUILDERS: Dict[str, Callable[[], Application]] = {}


def app_names() -> List[str]:
    """Names of all registered applications (built-ins first)."""
    return list(APP_BUILDERS.keys()) + sorted(_DYNAMIC_BUILDERS)


#: Builders already known to produce a structurally valid graph, so
#: repeated build_app calls (sweeps, tests) validate only once.
_VALIDATED: Dict[str, bool] = {}


def register_app(name: str,
                 builder: Callable[[], Application]) -> None:
    """Register a dynamic application builder under ``name``.

    Duplicate registration — against a built-in or an existing dynamic
    name — raises ``ValueError`` instead of silently overwriting: a
    clone or fixture landing on a taken name is a bug, not an update.
    ``synth:`` names are reserved for generator specs, which need no
    registration at all.
    """
    if not name:
        raise ValueError("application name must be non-empty")
    if name.startswith("synth:"):
        raise ValueError(
            f"cannot register {name!r}: the synth: prefix is reserved "
            f"for generator specs, which build_app resolves directly")
    if name in APP_BUILDERS or name in _DYNAMIC_BUILDERS:
        raise ValueError(
            f"application {name!r} is already registered; call "
            f"unregister_app({name!r}) first to replace it")
    _DYNAMIC_BUILDERS[name] = builder


def unregister_app(name: str) -> None:
    """Remove a dynamic registration and its validated-graph cache.

    Also accepts ``synth:`` spec names, whose only registry state *is*
    the cache entry — the matrix runner calls this after each cell so
    parameterized apps do not leak ``_VALIDATED`` state between runs.
    Built-ins cannot be unregistered.
    """
    if name in APP_BUILDERS:
        raise ValueError(
            f"{name!r} is a built-in application and cannot be "
            f"unregistered")
    _VALIDATED.pop(name, None)
    if name in _DYNAMIC_BUILDERS:
        del _DYNAMIC_BUILDERS[name]
    elif not name.startswith("synth:"):
        raise ValueError(f"unknown application {name!r}")


def reset_registry() -> None:
    """Drop every dynamic registration and all cached validation state
    (built-ins stay).  The hook tests call between parameterized apps."""
    _DYNAMIC_BUILDERS.clear()
    _VALIDATED.clear()


def build_app(name: str) -> Application:
    """Construct an application by name, validating its topology.

    Resolves built-ins, dynamic registrations, and ``synth:`` generator
    specs (``synth:mesh:n32:seed7``); every path validates once per
    name and caches the verdict.
    """
    builder = APP_BUILDERS.get(name) or _DYNAMIC_BUILDERS.get(name)
    if builder is not None:
        app = builder()
    elif name.startswith("synth:"):
        from .synth.generator import generate, parse_spec
        app = generate(parse_spec(name), validate=False)
    else:
        raise ValueError(
            f"unknown application {name!r}; choose from {app_names()} "
            f"or a generator spec like 'synth:mesh:n32:seed7'")
    if not _VALIDATED.get(name):
        errors = [f for f in validate_app(app)
                  if f.severity == Severity.ERROR]
        if errors:
            raise TopologyError(name, errors)
        _VALIDATED[name] = True
    return app


def build_monolith(name: str) -> Application:
    """Construct the monolithic counterpart of a suite application."""
    return monolithify(build_app(name))
