"""The E-commerce Service (Sec. 3.4, Fig. 6).

A clothing e-shop modeled on Weave Sockshop: a node.js front-end, Go and
Java logic tiers (catalogue, orders, cart, shipping, payment, invoicing),
a queueMaster serializing committed orders into an orderQueue, a search
tier, a recommender, and memcached/MongoDB backends.  REST (HTTP/1) is
the dominant protocol — per Table 1 the service is REST outside plus
some internal RPC; we model the whole app over HTTP, which is what gives
it the paper's higher per-message costs and blocking-connection
semantics.  41 unique microservices.

The queueMaster "uses synchronization to ensure that orders are
serialized, processed, and committed in order, which constrains its
scalability at high load" (Sec. 7) — modeled as ``max_workers=1``.
"""

from __future__ import annotations

from ..resilience.degrade import (
    CRIT_DEGRADABLE,
    CRIT_SHEDDABLE,
    DegradationPolicy,
)
from ..services.app import Application, Operation, Protocol
from ..services.calltree import CallNode, par, seq
from ..services.datastores import (
    memcached,
    message_queue,
    mongodb,
    node_frontend,
    recommender,
    search_index,
    xapian_search,
)
from ..services.definition import ServiceDefinition, ServiceKind

__all__ = ["build_ecommerce", "ECOMMERCE_QOS"]

ECOMMERCE_QOS = 0.025


def _logic(name: str, language: str, work_us: float, cv: float = 0.5,
           max_workers=None, **traits) -> ServiceDefinition:
    svc = ServiceDefinition(name=name, language=language,
                            kind=ServiceKind.LOGIC,
                            work_mean=work_us * 1e-6, work_cv=cv,
                            max_workers=max_workers)
    return svc.with_traits(**traits) if traits else svc


def _services() -> dict:
    """All 41 unique microservices of Fig. 6."""
    defs = [
        node_frontend("front-end"),
        # Catalogue & browsing.
        _logic("catalogue", "go", 350, cv=0.6),
        _logic("catalogue-media", "go", 250),
        _logic("discounts", "java", 90),
        _logic("socialNet", "java", 110),
        _logic("ads", "python", 700, memory_locality=0.3),
        # Account.
        _logic("login", "go", 150),
        _logic("accountInfo", "java", 110),
        _logic("wishlist", "java", 45, icache_footprint_kb=34,
               memory_locality=0.85),
        # Order pipeline (compute-heavy, high-level languages).
        _logic("cart", "java", 220),
        _logic("orders", "go", 750, cv=0.6),
        _logic("shipping", "java", 300),
        _logic("payment", "go", 750, cv=0.7),
        _logic("payment-authorization", "go", 350),
        _logic("transactionID", "go", 40),
        _logic("invoicing", "java", 320),
        _logic("queueMaster", "go", 180, max_workers=1),
        # Search + recommendation.
        xapian_search("search"),
        search_index("index0"),
        search_index("index1"),
        search_index("index2"),
        recommender("recommender"),
        # Backends: per-domain memcached + MongoDB pairs and the queue.
        memcached("mc-catalogue"),
        memcached("mc-cart"),
        memcached("mc-account"),
        memcached("mc-orders"),
        memcached("mc-media"),
        mongodb("mongo-catalogue"),
        mongodb("mongo-cart"),
        mongodb("mongo-account"),
        mongodb("mongo-orders"),
        mongodb("mongo-shipping"),
        mongodb("mongo-invoices"),
        mongodb("mongo-media"),
        mongodb("mongo-wishlist"),
        mongodb("mongo-discounts"),
        message_queue("orderQueue"),
        # Static media + misc.
        _logic("media", "node.js", 200),
        _logic("sessions", "go", 60),
        _logic("tax", "java", 120),
        _logic("currency", "go", 50),
    ]
    return {svc.name: svc for svc in defs}


def _cached(cache: str, store: str, miss_scale: float,
            response_kb: float = 2.0) -> CallNode:
    return CallNode(service=cache, request_kb=0.3, response_kb=response_kb,
                    groups=seq(CallNode(service=store,
                                        work_scale=miss_scale,
                                        response_kb=response_kb)))


def _front(groups) -> CallNode:
    return CallNode(service="front-end", request_kb=1.5, response_kb=8.0,
                    groups=groups)


def _browse_catalogue() -> Operation:
    """Browse the shop: catalogue mining plus ads/discounts/recs."""
    root = _front([
        [CallNode(service="sessions")],
        [CallNode(service="catalogue", response_kb=20.0,
                  groups=seq(_cached("mc-catalogue", "mongo-catalogue",
                                     0.3, response_kb=20.0))),
         CallNode(service="catalogue-media", response_kb=60.0,
                  groups=seq(_cached("mc-media", "mongo-media", 0.4,
                                     response_kb=60.0))),
         CallNode(service="discounts",
                  groups=seq(CallNode(service="mongo-discounts",
                                      work_scale=0.4))),
         CallNode(service="media", response_kb=40.0),
         CallNode(service="ads")],
    ])
    return Operation(name="browseCatalogue", root=root)


def _search_shop() -> Operation:
    root = _front(seq(CallNode(
        service="search",
        groups=par(CallNode(service="index0"),
                   CallNode(service="index1"),
                   CallNode(service="index2")))))
    return Operation(name="searchShop", root=root)


def _add_to_cart() -> Operation:
    root = _front(seq(
        CallNode(service="sessions"),
        CallNode(service="cart",
                 groups=seq(_cached("mc-cart", "mongo-cart", 0.8)))))
    return Operation(name="addToCart", root=root)


def _wishlist_op() -> Operation:
    root = _front(seq(
        CallNode(service="wishlist",
                 groups=seq(CallNode(service="mongo-wishlist",
                                     work_scale=0.5)))))
    return Operation(name="updateWishlist", root=root)


def _place_order() -> Operation:
    """The full order flow: cart → login → shipping → payment →
    invoice → serialize through queueMaster.  1-2 orders of magnitude
    longer than browsing (Sec. 3.8)."""
    root = _front(seq(
        CallNode(service="cart",
                 groups=seq(_cached("mc-cart", "mongo-cart", 0.8))),
        CallNode(service="login",
                 groups=seq(_cached("mc-account", "mongo-account", 0.2))),
        CallNode(service="orders", groups=[
            [CallNode(service="accountInfo",
                      groups=seq(_cached("mc-account", "mongo-account",
                                         0.3)))],
            [CallNode(service="shipping", groups=seq(
                CallNode(service="tax"),
                CallNode(service="mongo-shipping", work_scale=1.0)))],
            [CallNode(service="payment", groups=seq(
                CallNode(service="currency"),
                CallNode(service="payment-authorization"),
                CallNode(service="transactionID")))],
            [CallNode(service="invoicing",
                      groups=seq(CallNode(service="mongo-invoices")))],
            [CallNode(service="queueMaster", groups=seq(
                CallNode(service="orderQueue"),
                CallNode(service="mongo-orders")))],
        ])))
    return Operation(name="placeOrder", root=root)


def _recommendations() -> Operation:
    root = _front(seq(
        CallNode(service="recommender",
                 groups=seq(_cached("mc-orders", "mongo-orders", 0.3))),
        CallNode(service="socialNet")))
    return Operation(name="recommendations", root=root)


def build_ecommerce() -> Application:
    """Construct the E-commerce application."""
    operations = {}
    for op in [_browse_catalogue(), _search_shop(), _add_to_cart(),
               _wishlist_op(), _place_order(), _recommendations()]:
        operations[op.name] = op
    weights = {
        "browseCatalogue": 50.0,
        "searchShop": 15.0,
        "addToCart": 12.0,
        "updateWishlist": 5.0,
        "placeOrder": 10.0,
        "recommendations": 8.0,
    }
    for name, weight in weights.items():
        operations[name].weight = weight
    # Criticality: the money path (cart, order, wishlist) is critical;
    # browsing degrades; search and recommendations shed first.
    operations["browseCatalogue"].criticality = CRIT_DEGRADABLE
    operations["searchShop"].criticality = CRIT_SHEDDABLE
    operations["recommendations"].criticality = CRIT_SHEDDABLE

    degradation_policies = {
        "ads": DegradationPolicy(
            service="ads", optional=True, drop_level=1,
            fallback="default", fidelity_cost=0.05),
        "discounts": DegradationPolicy(
            service="discounts", optional=True, drop_level=1,
            fallback="default", fidelity_cost=0.05),
        # A catalogue page without hero media still sells socks.
        "catalogue-media": DegradationPolicy(
            service="catalogue-media", optional=True, drop_level=2,
            fidelity_cost=0.1),
        "mc-catalogue": DegradationPolicy(
            service="mc-catalogue", fallback="stale_cache",
            fidelity_cost=0.15),
        "mc-cart": DegradationPolicy(
            service="mc-cart", fallback="stale_cache",
            fidelity_cost=0.15),
        "index0": DegradationPolicy(
            service="index0", fanout_keep=1, fanout_level=1,
            fidelity_cost=0.2),
        "index1": DegradationPolicy(
            service="index1", fanout_keep=1, fanout_level=1,
            fidelity_cost=0.2),
        "index2": DegradationPolicy(
            service="index2", fanout_keep=1, fanout_level=1,
            fidelity_cost=0.2),
        # Payment authorization must survive every brownout level.
        "payment-authorization": DegradationPolicy(
            service="payment-authorization", never_drop=True),
    }

    return Application(
        name="ecommerce",
        services=_services(),
        operations=operations,
        protocol=Protocol.HTTP,
        qos_latency=ECOMMERCE_QOS,
        entry_service="front-end",
        sharded_services=["mongo-cart", "mc-cart"],
        degradation_policies=degradation_policies,
        metadata={
            "paper_table1": {
                "total_locs": 16194,
                "protocol": "REST+RPC",
                "handwritten_rpc_locs": 2658,
                "handwritten_rest_locs": 4798,
                "autogen_rpc_locs": 12085,
                "unique_microservices": 41,
                "language_share": {
                    "java": 0.21, "c++": 0.16, "c": 0.15, "go": 0.14,
                    "javascript": 0.10, "node.js": 0.07, "scala": 0.05,
                    "html": 0.04, "ruby": 0.03,
                },
            },
        },
    )
