"""The network fabric: what happens between two service instances.

One message traverses: sender kernel TCP processing (CPU work on the
sender's cores — or the FPGA offload path), the sender NIC transmission
queue, the wire/switch latency for the zone pair, the receiver NIC, and
receiver kernel TCP processing.  Same-machine calls short-circuit to
IPC (Swarm-Edge services on one drone communicate over IPC — Sec. 3.6).

Because TCP processing runs on the same processor-sharing cores as
application logic, a saturated tier's *network* time inflates along
with its compute — which is exactly the Fig. 15 observation that network
processing grows from ~18 % of tail latency at low load to dominating it
at high load, and the Fig. 3 observation that microservices spend ~36 %
of time in network processing vs. 5-20 % for monolithic services.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim.engine import Environment, Event
from ..sim.rng import RandomStreams
from .fpga import FpgaOffload
from .protocols import IPC_COSTS, ProtocolCosts

__all__ = ["NetworkFabric", "TransferTiming", "LinkFault",
           "DEFAULT_ZONE_LATENCY"]

#: One-way propagation+switching latency per (src_zone, dst_zone), seconds.
DEFAULT_ZONE_LATENCY: Dict[Tuple[str, str], float] = {
    ("cloud", "cloud"): 25e-6,     # same ToR switch
    ("client", "cloud"): 100e-6,   # load generator to cluster
    ("cloud", "client"): 100e-6,
    ("edge", "cloud"): 10e-3,      # drone wifi over tens of meters
    ("cloud", "edge"): 10e-3,
    ("edge", "edge"): 2.5e-3,      # drone to drone via wireless router
    ("client", "edge"): 2.5e-3,
    ("edge", "client"): 2.5e-3,
}


@dataclass
class TransferTiming:
    """Where one message's latency went (all seconds of wall time)."""

    cpu_send: float = 0.0
    cpu_recv: float = 0.0
    nic: float = 0.0
    wire: float = 0.0
    offload: float = 0.0
    total: float = 0.0
    #: Host CPU work consumed (nominal seconds), for attribution.
    host_cpu_work: float = 0.0

    def merge(self, other: "TransferTiming") -> None:
        """Accumulate another message's timing into this one."""
        self.cpu_send += other.cpu_send
        self.cpu_recv += other.cpu_recv
        self.nic += other.nic
        self.wire += other.wire
        self.offload += other.offload
        self.total += other.total
        self.host_cpu_work += other.host_cpu_work


@dataclass
class LinkFault:
    """Degradation of one directed zone link (chaos injection).

    ``loss_rate`` models per-message packet loss as TCP retransmission:
    each lost transmission costs one ``rto`` before the retry, with up
    to ``max_retransmits`` attempts (the draw is geometric and comes
    from the fabric's seeded RNG, so faulty runs stay deterministic and
    healthy links draw nothing).  ``partition_heal`` is an untriggered
    event while the link is cut: messages queue on it and deliver only
    after the partition heals — upstream RPC timeouts, not the fabric,
    decide what that silence means."""

    extra_latency: float = 0.0
    loss_rate: float = 0.0
    rto: float = 0.2
    max_retransmits: int = 6
    partition_heal: Optional[Event] = None

    @property
    def partitioned(self) -> bool:
        return (self.partition_heal is not None
                and not self.partition_heal.triggered)


@dataclass
class NetworkFabric:
    """Shared network model for one deployment."""

    env: Environment
    rng: RandomStreams = field(default_factory=lambda: RandomStreams(0))
    zone_latency: Dict[Tuple[str, str], float] = field(
        default_factory=lambda: dict(DEFAULT_ZONE_LATENCY))
    #: Active per-directed-link degradations, keyed by (src, dst) zone.
    link_faults: Dict[Tuple[str, str], LinkFault] = field(
        default_factory=dict)
    #: Coefficient of variation of multiplicative wire-latency jitter
    #: (serverless placements crank this up).
    jitter_cv: float = 0.1
    #: Kernel network processing gets superlinearly more expensive as a
    #: host loads up (interrupt-coalescing breakdown, softirq
    #: contention, socket-buffer pressure): per-message CPU cost is
    #: multiplied by ``1 + coeff * utilization^2``.  This is the
    #: mechanism behind Fig. 15's "network processing becomes a much
    #: more pronounced factor of tail latency at high load".
    congestion_coeff: float = 1.5
    fpga: Optional[FpgaOffload] = None

    # -- fault injection -------------------------------------------------
    def degrade_link(self, src_zone: str, dst_zone: str,
                     extra_latency: float = 0.0, loss_rate: float = 0.0,
                     rto: float = 0.2, bidirectional: bool = True,
                     ) -> List[Tuple[str, str]]:
        """Degrade a zone link: added propagation delay and/or packet
        loss (paid as retransmission timeouts).  Returns the directed
        link keys touched so a fault injector can heal exactly those."""
        if extra_latency < 0:
            raise ValueError("extra_latency must be >= 0")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        keys = [(src_zone, dst_zone)]
        if bidirectional and dst_zone != src_zone:
            keys.append((dst_zone, src_zone))
        for key in keys:
            self.link_faults[key] = LinkFault(
                extra_latency=extra_latency, loss_rate=loss_rate,
                rto=rto)
        return keys

    def partition(self, zone_a: str, zone_b: str,
                  bidirectional: bool = True) -> List[Tuple[str, str]]:
        """Cut the link between two zones: messages stall until
        :meth:`heal` releases them (callers see silence, then delivery
        — the classic partition-heal reordering)."""
        keys = [(zone_a, zone_b)]
        if bidirectional and zone_a != zone_b:
            keys.append((zone_b, zone_a))
        for key in keys:
            self.link_faults[key] = LinkFault(
                partition_heal=self.env.event())
        return keys

    def heal(self, src_zone: str, dst_zone: str,
             bidirectional: bool = True) -> None:
        """Remove any fault on a link, releasing partitioned traffic."""
        keys = [(src_zone, dst_zone)]
        if bidirectional and dst_zone != src_zone:
            keys.append((dst_zone, src_zone))
        for key in keys:
            fault = self.link_faults.pop(key, None)
            if fault is not None and fault.partitioned:
                fault.partition_heal.succeed()

    def _retransmit_delay(self, fault: LinkFault) -> float:
        """Seconds of RTO stalls for one message on a lossy link."""
        delay = 0.0
        for _ in range(fault.max_retransmits):
            if self.rng.uniform("fabric.loss", 0.0, 1.0) >= \
                    fault.loss_rate:
                break
            delay += fault.rto
        return delay

    def latency(self, src_zone: str, dst_zone: str) -> float:
        """Base one-way latency for a zone pair."""
        try:
            return self.zone_latency[(src_zone, dst_zone)]
        except KeyError:
            raise ValueError(
                f"no latency configured for {src_zone!r}->{dst_zone!r}"
            ) from None

    def _jittered(self, base: float) -> float:
        if self.jitter_cv <= 0 or base <= 0:
            return base
        return self.rng.lognormal("fabric.jitter", base, self.jitter_cv)

    def wire_delay(self, src_zone: str, dst_zone: str):
        """The wire leg of one message between two zones: partition
        stall (if the link is cut), jittered propagation, injected
        extra latency, and loss paid as RTO retransmits.

        A generator to be driven with ``yield from``; returns the
        seconds spent.  :meth:`transfer` uses it for the intra-cluster
        hop, and the cross-region layer (:mod:`repro.region`) reuses it
        for front-door legs, health probes, and replication shipping so
        every path over a link shares one fault model."""
        total = 0.0
        fault = self.link_faults.get((src_zone, dst_zone))
        if fault is not None and fault.partitioned:
            # The cut holds the message; it delivers after heal.
            t0 = self.env.now
            yield fault.partition_heal
            total += self.env.now - t0
        wire = self._jittered(self.latency(src_zone, dst_zone))
        if fault is not None:
            wire += fault.extra_latency
            if fault.loss_rate > 0.0:
                wire += self._retransmit_delay(fault)
        yield self.env.timeout(wire)
        return total + wire

    def _congested(self, cost: float, instance) -> float:
        """Inflate kernel CPU cost by the host's current load."""
        if self.congestion_coeff <= 0:
            return cost
        util = instance.cpu.instantaneous_utilization()
        return cost * (1.0 + self.congestion_coeff * util * util)

    def transfer(self, src, dst, size_kb: float, costs: ProtocolCosts):
        """Move one message from ``src`` to ``dst`` (either may be None
        for the external client).  A generator to be driven with
        ``yield from``; returns a :class:`TransferTiming`."""
        if size_kb < 0:
            raise ValueError("size_kb must be >= 0")
        timing = TransferTiming()
        start = self.env.now
        same_machine = (src is not None and dst is not None
                        and src.machine is dst.machine)
        if same_machine:
            costs = IPC_COSTS

        # Sender-side protocol processing.
        if src is not None:
            cost = self._congested(costs.send_cost(size_kb), src)
            if self.fpga is not None and not same_machine:
                delay = self.fpga.offload_latency(cost, size_kb)
                yield self.env.timeout(delay)
                timing.offload += delay
            else:
                t0 = self.env.now
                yield src.network_compute(cost)
                timing.cpu_send = self.env.now - t0
                timing.host_cpu_work += cost

        if not same_machine:
            # Sender NIC serialization.
            if src is not None:
                with src.machine.nic_tx.request() as req:
                    t0 = self.env.now
                    yield req
                    yield self.env.timeout(
                        size_kb / src.machine.nic_bandwidth_kb_s)
                    timing.nic += self.env.now - t0
            # Wire / switch propagation.
            src_zone = src.machine.zone if src is not None else "client"
            dst_zone = dst.machine.zone if dst is not None else "client"
            timing.wire += yield from self.wire_delay(src_zone, dst_zone)
            # Receiver NIC.
            if dst is not None:
                with dst.machine.nic_rx.request() as req:
                    t0 = self.env.now
                    yield req
                    yield self.env.timeout(
                        size_kb / dst.machine.nic_bandwidth_kb_s)
                    timing.nic += self.env.now - t0

        # Receiver-side protocol processing.
        if dst is not None:
            cost = self._congested(costs.recv_cost(size_kb), dst)
            if self.fpga is not None and not same_machine:
                delay = self.fpga.offload_latency(cost, size_kb)
                yield self.env.timeout(delay)
                timing.offload += delay
            else:
                t0 = self.env.now
                yield dst.network_compute(cost)
                timing.cpu_recv = self.env.now - t0
                timing.host_cpu_work += cost

        timing.total = self.env.now - start
        return timing
