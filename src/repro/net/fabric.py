"""The network fabric: what happens between two service instances.

One message traverses: sender kernel TCP processing (CPU work on the
sender's cores — or the FPGA offload path), the sender NIC transmission
queue, the wire/switch latency for the zone pair, the receiver NIC, and
receiver kernel TCP processing.  Same-machine calls short-circuit to
IPC (Swarm-Edge services on one drone communicate over IPC — Sec. 3.6).

Because TCP processing runs on the same processor-sharing cores as
application logic, a saturated tier's *network* time inflates along
with its compute — which is exactly the Fig. 15 observation that network
processing grows from ~18 % of tail latency at low load to dominating it
at high load, and the Fig. 3 observation that microservices spend ~36 %
of time in network processing vs. 5-20 % for monolithic services.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..sim.engine import Environment
from ..sim.rng import RandomStreams
from .fpga import FpgaOffload
from .protocols import IPC_COSTS, ProtocolCosts

__all__ = ["NetworkFabric", "TransferTiming", "DEFAULT_ZONE_LATENCY"]

#: One-way propagation+switching latency per (src_zone, dst_zone), seconds.
DEFAULT_ZONE_LATENCY: Dict[Tuple[str, str], float] = {
    ("cloud", "cloud"): 25e-6,     # same ToR switch
    ("client", "cloud"): 100e-6,   # load generator to cluster
    ("cloud", "client"): 100e-6,
    ("edge", "cloud"): 10e-3,      # drone wifi over tens of meters
    ("cloud", "edge"): 10e-3,
    ("edge", "edge"): 2.5e-3,      # drone to drone via wireless router
    ("client", "edge"): 2.5e-3,
    ("edge", "client"): 2.5e-3,
}


@dataclass
class TransferTiming:
    """Where one message's latency went (all seconds of wall time)."""

    cpu_send: float = 0.0
    cpu_recv: float = 0.0
    nic: float = 0.0
    wire: float = 0.0
    offload: float = 0.0
    total: float = 0.0
    #: Host CPU work consumed (nominal seconds), for attribution.
    host_cpu_work: float = 0.0

    def merge(self, other: "TransferTiming") -> None:
        """Accumulate another message's timing into this one."""
        self.cpu_send += other.cpu_send
        self.cpu_recv += other.cpu_recv
        self.nic += other.nic
        self.wire += other.wire
        self.offload += other.offload
        self.total += other.total
        self.host_cpu_work += other.host_cpu_work


@dataclass
class NetworkFabric:
    """Shared network model for one deployment."""

    env: Environment
    rng: RandomStreams = field(default_factory=lambda: RandomStreams(0))
    zone_latency: Dict[Tuple[str, str], float] = field(
        default_factory=lambda: dict(DEFAULT_ZONE_LATENCY))
    #: Coefficient of variation of multiplicative wire-latency jitter
    #: (serverless placements crank this up).
    jitter_cv: float = 0.1
    #: Kernel network processing gets superlinearly more expensive as a
    #: host loads up (interrupt-coalescing breakdown, softirq
    #: contention, socket-buffer pressure): per-message CPU cost is
    #: multiplied by ``1 + coeff * utilization^2``.  This is the
    #: mechanism behind Fig. 15's "network processing becomes a much
    #: more pronounced factor of tail latency at high load".
    congestion_coeff: float = 1.5
    fpga: Optional[FpgaOffload] = None

    def latency(self, src_zone: str, dst_zone: str) -> float:
        """Base one-way latency for a zone pair."""
        try:
            return self.zone_latency[(src_zone, dst_zone)]
        except KeyError:
            raise ValueError(
                f"no latency configured for {src_zone!r}->{dst_zone!r}"
            ) from None

    def _jittered(self, base: float) -> float:
        if self.jitter_cv <= 0 or base <= 0:
            return base
        return self.rng.lognormal("fabric.jitter", base, self.jitter_cv)

    def _congested(self, cost: float, instance) -> float:
        """Inflate kernel CPU cost by the host's current load."""
        if self.congestion_coeff <= 0:
            return cost
        util = instance.cpu.instantaneous_utilization()
        return cost * (1.0 + self.congestion_coeff * util * util)

    def transfer(self, src, dst, size_kb: float, costs: ProtocolCosts):
        """Move one message from ``src`` to ``dst`` (either may be None
        for the external client).  A generator to be driven with
        ``yield from``; returns a :class:`TransferTiming`."""
        if size_kb < 0:
            raise ValueError("size_kb must be >= 0")
        timing = TransferTiming()
        start = self.env.now
        same_machine = (src is not None and dst is not None
                        and src.machine is dst.machine)
        if same_machine:
            costs = IPC_COSTS

        # Sender-side protocol processing.
        if src is not None:
            cost = self._congested(costs.send_cost(size_kb), src)
            if self.fpga is not None and not same_machine:
                delay = self.fpga.offload_latency(cost, size_kb)
                yield self.env.timeout(delay)
                timing.offload += delay
            else:
                t0 = self.env.now
                yield src.network_compute(cost)
                timing.cpu_send = self.env.now - t0
                timing.host_cpu_work += cost

        if not same_machine:
            # Sender NIC serialization.
            if src is not None:
                with src.machine.nic_tx.request() as req:
                    t0 = self.env.now
                    yield req
                    yield self.env.timeout(
                        size_kb / src.machine.nic_bandwidth_kb_s)
                    timing.nic += self.env.now - t0
            # Wire / switch propagation.
            src_zone = src.machine.zone if src is not None else "client"
            dst_zone = dst.machine.zone if dst is not None else "client"
            wire = self._jittered(self.latency(src_zone, dst_zone))
            yield self.env.timeout(wire)
            timing.wire = wire
            # Receiver NIC.
            if dst is not None:
                with dst.machine.nic_rx.request() as req:
                    t0 = self.env.now
                    yield req
                    yield self.env.timeout(
                        size_kb / dst.machine.nic_bandwidth_kb_s)
                    timing.nic += self.env.now - t0

        # Receiver-side protocol processing.
        if dst is not None:
            cost = self._congested(costs.recv_cost(size_kb), dst)
            if self.fpga is not None and not same_machine:
                delay = self.fpga.offload_latency(cost, size_kb)
                yield self.env.timeout(delay)
                timing.offload += delay
            else:
                t0 = self.env.now
                yield dst.network_compute(cost)
                timing.cpu_recv = self.env.now - t0
                timing.host_cpu_work += cost

        timing.total = self.env.now - start
        return timing
