"""Bump-in-the-wire FPGA TCP offload (Fig. 16).

The paper places a Virtex-7 FPGA between each NIC and the ToR switch and
offloads the entire TCP stack onto it.  Two effects matter:

1. the host CPU no longer spends kernel cycles on TCP processing, and
2. the processing itself completes 10-68x faster than the native stack.

We model the offload as: a message's TCP processing costs zero host CPU
and contributes ``native_cpu_cost / speedup`` of pure latency instead.
The paper reports the *distribution* of speedups across services as
10-68x; we draw a deterministic per-size speedup within that band
(larger messages benefit more, as the HLS pipeline streams payloads).
"""

from __future__ import annotations

__all__ = ["FpgaOffload"]


class FpgaOffload:
    """TCP offload configuration applied to a deployment's fabric."""

    def __init__(self, min_speedup: float = 10.0, max_speedup: float = 68.0,
                 saturation_kb: float = 64.0):
        if not 1.0 <= min_speedup <= max_speedup:
            raise ValueError("need 1 <= min_speedup <= max_speedup")
        if saturation_kb <= 0:
            raise ValueError("saturation_kb must be > 0")
        self.min_speedup = min_speedup
        self.max_speedup = max_speedup
        self.saturation_kb = saturation_kb

    def speedup(self, size_kb: float) -> float:
        """Speedup over native TCP for a message of ``size_kb``."""
        frac = min(1.0, max(0.0, size_kb / self.saturation_kb))
        return self.min_speedup + frac * (self.max_speedup - self.min_speedup)

    def offload_latency(self, native_cpu_cost_s: float,
                        size_kb: float) -> float:
        """Wire-side processing latency replacing the host CPU work."""
        if native_cpu_cost_s < 0:
            raise ValueError("native cost must be >= 0")
        return native_cpu_cost_s / self.speedup(size_kb)
