"""Network substrate: protocol costs, fabric, and FPGA offload."""

from .fabric import DEFAULT_ZONE_LATENCY, NetworkFabric, TransferTiming
from .fpga import FpgaOffload
from .protocols import (
    HTTP_COSTS,
    IPC_COSTS,
    RPC_COSTS,
    ProtocolCosts,
    costs_for,
)

__all__ = [
    "DEFAULT_ZONE_LATENCY",
    "FpgaOffload",
    "HTTP_COSTS",
    "IPC_COSTS",
    "NetworkFabric",
    "ProtocolCosts",
    "RPC_COSTS",
    "TransferTiming",
    "costs_for",
]
