"""Wire protocol cost models.

Section 7 compares Thrift-style binary RPC against RESTful HTTP/1.
Three properties matter for the paper's results:

* RPC has lower per-message CPU cost (binary framing vs. text parsing),
  so it introduces "considerably lower latencies at low load than HTTP";
* both burn kernel CPU proportional to payload size (TCP segmentation,
  copies) — this is the "network processing" that inflates 3.2x at high
  load in Fig. 15;
* HTTP/1 connections are *blocking* — one outstanding request per
  connection — the backpressure mechanism of Fig. 17 case B.

The per-message costs below are nominal-Xeon CPU seconds, consumed on
the sending/receiving instance's cores by the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProtocolCosts", "RPC_COSTS", "HTTP_COSTS", "IPC_COSTS",
           "costs_for"]


@dataclass(frozen=True)
class ProtocolCosts:
    """CPU cost parameters of one wire protocol."""

    name: str
    send_overhead_s: float
    recv_overhead_s: float
    per_kb_s: float
    blocking_connections: bool
    connections_per_pair: int

    def __post_init__(self):
        if min(self.send_overhead_s, self.recv_overhead_s,
               self.per_kb_s) < 0:
            raise ValueError("protocol costs must be >= 0")
        if self.connections_per_pair < 1:
            raise ValueError("connections_per_pair must be >= 1")

    def send_cost(self, size_kb: float) -> float:
        """Sender-side kernel CPU seconds for one message."""
        return self.send_overhead_s + self.per_kb_s * size_kb

    def recv_cost(self, size_kb: float) -> float:
        """Receiver-side kernel CPU seconds for one message."""
        return self.recv_overhead_s + self.per_kb_s * size_kb


#: Apache-Thrift-like binary RPC.
RPC_COSTS = ProtocolCosts(
    name="rpc", send_overhead_s=8e-6, recv_overhead_s=10e-6,
    per_kb_s=0.4e-6, blocking_connections=False,
    connections_per_pair=128,
)

#: RESTful HTTP/1: text parsing overhead and blocking connections.
HTTP_COSTS = ProtocolCosts(
    name="http", send_overhead_s=18e-6, recv_overhead_s=22e-6,
    per_kb_s=0.7e-6, blocking_connections=True,
    connections_per_pair=8,
)

#: Same-device inter-process communication (Swarm-Edge on-drone calls).
IPC_COSTS = ProtocolCosts(
    name="ipc", send_overhead_s=2e-6, recv_overhead_s=2e-6,
    per_kb_s=0.15e-6, blocking_connections=False,
    connections_per_pair=1024,
)

_BY_NAME = {c.name: c for c in (RPC_COSTS, HTTP_COSTS, IPC_COSTS)}


def costs_for(protocol: str) -> ProtocolCosts:
    """Look up the cost model for a protocol name ('rpc'/'http'/'ipc')."""
    try:
        return _BY_NAME[protocol]
    except KeyError:
        raise ValueError(f"unknown protocol {protocol!r}") from None
