"""repro — a reproduction of DeathStarBench (ASPLOS 2019) in Python.

An open-source benchmark suite for microservices, rebuilt as a
high-fidelity discrete-event simulation: the six end-to-end
applications (social network, media service, e-commerce, banking, and
the two drone-swarm configurations), the cluster/network/architecture
substrates they run on, distributed tracing, autoscaling, a serverless
deployment model, and the experiment harness that regenerates every
table and figure of the paper's evaluation.

Quick start::

    from repro import DeathStarBench, simulate

    suite = DeathStarBench()
    app = suite.build("social_network")
    result = simulate(app, qps=100, duration=30.0)
    print(result.tail(0.99), result.throughput())
"""

from .analytic import AnalyticModel
from .apps import app_names, build_app, build_monolith
from .chaos import (
    FaultSchedule,
    Scorecard,
    SteadyStateHypothesis,
    run_chaos_scenario,
    run_chaos_suite,
)
from .cluster import HealthCheckConfig, HealthChecker
from .core import (
    DeathStarBench,
    Deployment,
    ExperimentResult,
    QoSTarget,
    balanced_provision,
    run_experiment,
    simulate,
)
from .obs import (
    MetricsRegistry,
    QoSReport,
    attribute_qos_violations,
    to_prometheus_text,
    traces_to_otlp_json,
)
from .resilience import (
    BreakerConfig,
    LoadShedder,
    ResiliencePolicy,
)
from .services import Application, CallNode, Operation, ServiceDefinition

__version__ = "1.0.0"

__all__ = [
    "AnalyticModel",
    "Application",
    "BreakerConfig",
    "CallNode",
    "DeathStarBench",
    "Deployment",
    "ExperimentResult",
    "FaultSchedule",
    "HealthCheckConfig",
    "HealthChecker",
    "LoadShedder",
    "MetricsRegistry",
    "Operation",
    "QoSReport",
    "QoSTarget",
    "ResiliencePolicy",
    "Scorecard",
    "ServiceDefinition",
    "SteadyStateHypothesis",
    "app_names",
    "attribute_qos_violations",
    "balanced_provision",
    "build_app",
    "build_monolith",
    "run_chaos_scenario",
    "run_chaos_suite",
    "run_experiment",
    "simulate",
    "to_prometheus_text",
    "traces_to_otlp_json",
    "__version__",
]
