"""The DeathStarBench suite facade.

One object that hands out applications, their monolithic counterparts,
QoS targets, and the Table 1 suite-composition report — the top of the
public API:

    >>> from repro import DeathStarBench
    >>> suite = DeathStarBench()
    >>> app = suite.build("social_network")
    >>> app.unique_microservices
    36
"""

from __future__ import annotations

from typing import Dict, List

from ..apps.registry import APP_BUILDERS, build_app, build_monolith
from ..services.app import Application
from ..stats.tables import format_table
from .qos import QoSTarget

__all__ = ["DeathStarBench"]


class DeathStarBench:
    """Registry + reporting facade over the six end-to-end services."""

    def apps(self) -> List[str]:
        """Names of the end-to-end applications."""
        return list(APP_BUILDERS.keys())

    def build(self, name: str) -> Application:
        """Construct one application."""
        return build_app(name)

    def build_monolith(self, name: str) -> Application:
        """Construct an application's monolithic counterpart."""
        return build_monolith(name)

    def build_all(self) -> Dict[str, Application]:
        """Construct every application."""
        return {name: build_app(name) for name in self.apps()}

    def qos(self, name: str) -> QoSTarget:
        """The end-to-end QoS target of one application."""
        return QoSTarget(latency=build_app(name).qos_latency)

    # -- Table 1 ---------------------------------------------------------
    def table1_rows(self) -> List[list]:
        """One row per service: measured vs. paper characteristics."""
        rows = []
        for name, app in self.build_all().items():
            paper = app.metadata.get("paper_table1", {})
            langs = app.language_breakdown()
            top = ", ".join(f"{lang} {share:.0%}"
                            for lang, share in list(langs.items())[:4])
            rows.append([
                name,
                app.protocol.upper(),
                app.unique_microservices,
                paper.get("unique_microservices", "-"),
                paper.get("total_locs", "-"),
                top,
            ])
        return rows

    def table1(self) -> str:
        """Render the suite-composition table (paper Table 1)."""
        return format_table(
            ["service", "protocol", "microservices (built)",
             "microservices (paper)", "paper LoCs",
             "top languages (built)"],
            self.table1_rows(),
            title="Table 1: characteristics of each end-to-end service",
        )
