"""QoS targets and goodput.

Every comparative result in the paper is phrased against a QoS target:
"max QPS at QoS", "tail latency normalized to QoS", "goodput
(throughput under QoS)".  A :class:`QoSTarget` is a latency bound at a
percentile; goodput is throughput while the bound holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..stats.percentiles import percentile

__all__ = ["QoSTarget"]


@dataclass(frozen=True)
class QoSTarget:
    """An end-to-end tail-latency bound."""

    latency: float
    percentile: float = 0.99

    def __post_init__(self):
        if self.latency <= 0:
            raise ValueError("latency must be > 0")
        if not 0.0 < self.percentile < 1.0:
            raise ValueError("percentile must be in (0,1)")

    def tail(self, samples: Sequence[float]) -> float:
        """Observed tail latency of a sample set."""
        return percentile(samples, self.percentile)

    def met(self, samples: Sequence[float]) -> bool:
        """True if the sample set satisfies the bound."""
        return self.tail(samples) <= self.latency

    def violation_factor(self, samples: Sequence[float]) -> float:
        """Observed tail divided by the bound (>1 means violated)."""
        return self.tail(samples) / self.latency

    def goodput(self, samples: Sequence[float],
                throughput: float) -> float:
        """Throughput if QoS holds, else 0 — the Fig. 22 y-axis."""
        return throughput if self.met(samples) else 0.0
