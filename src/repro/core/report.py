"""Markdown experiment reports.

Turns one :class:`~repro.core.experiment.ExperimentResult` into a
self-contained markdown document: headline metrics, latency
distribution, per-tier attribution (exclusive time, network share,
critical-path frequency), per-tier architectural profiles, and the
deployment's placement picture.  The CLI's ``report`` command writes it
to a file; notebooks can render it inline.
"""

from __future__ import annotations

from typing import List

from ..arch.core_model import CoreModel
from ..cluster.placement import placement_report
from ..stats.percentiles import summarize
from ..tracing.analysis import (
    critical_path_services,
    network_share,
    per_service_exclusive,
)

__all__ = ["render_report"]


def _md_table(headers: List[str], rows: List[list]) -> str:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def render_report(result, title: str = "") -> str:
    """Render a full markdown report for one experiment result."""
    app = result.deployment.app
    lines = [f"# {title or app.name} experiment report", ""]

    # Headline.
    stats = summarize(result.latencies())
    lines.append("## Summary")
    lines.append("")
    lines.append(_md_table(
        ["metric", "value"],
        [["application", app.name],
         ["protocol", app.protocol.upper()],
         ["duration (s)", f"{result.duration:g}"],
         ["completed requests", result.collector.total_collected],
         ["throughput (req/s)", f"{result.throughput():.1f}"],
         ["mean latency (ms)", f"{stats['mean'] * 1e3:.2f}"],
         ["p50 / p95 / p99 (ms)",
          f"{stats['p50'] * 1e3:.2f} / {stats['p95'] * 1e3:.2f} / "
          f"{stats['p99'] * 1e3:.2f}"],
         ["QoS target (ms)", f"{app.qos_latency * 1e3:.1f}"],
         ["QoS met", result.qos_met()],
         ["completion ratio", f"{result.completion_ratio():.3f}"],
         ["dropped traces", result.collector.dropped_traces]]))
    lines.append("")
    if result.collector.dropped_traces:
        lines.append(
            f"> **Warning:** {result.collector.dropped_traces} traces "
            f"were dropped by the collector's retention cap; the "
            f"attribution below covers the retained prefix only.")
        lines.append("")

    # Tier attribution.
    traces = [t for t in result.collector.traces
              if t.start >= result.warmup]
    if traces:
        exclusive = per_service_exclusive(traces)
        critical = critical_path_services(traces)
        top = sorted(exclusive.items(), key=lambda kv: -kv[1])[:10]
        lines.append("## Where the latency goes")
        lines.append("")
        lines.append(f"Network processing share of execution: "
                     f"**{network_share(traces):.1%}**")
        lines.append("")
        model = CoreModel()
        rows = []
        for service, value in top:
            profile = model.profile(app.services[service].traits)
            rows.append([
                service,
                f"{value * 1e6:.0f}",
                f"{critical.get(service, 0.0):.0%}",
                f"{profile['l1i_mpki']:.1f}",
                f"{profile['ipc']:.2f}",
            ])
        lines.append(_md_table(
            ["tier", "exclusive us/req", "on critical path",
             "L1i MPKI", "IPC"], rows))
        lines.append("")

    # Placement.
    machines = [m for m in result.deployment.cluster.machines
                if m.instances]
    lines.append("## Placement")
    lines.append("")
    lines.append(_md_table(
        ["machine", "instances", "cores used", "services"],
        placement_report(machines)))
    lines.append("")
    return "\n".join(lines)
