"""The experiment harness: deployments, QoS, provisioning, the suite."""

from .deployment import Deployment
from .experiment import ExperimentResult, run_experiment, simulate
from .provisioning import balanced_provision, provision_iteratively
from .qos import QoSTarget
from .report import render_report
from .suite import DeathStarBench

__all__ = [
    "DeathStarBench",
    "Deployment",
    "ExperimentResult",
    "QoSTarget",
    "balanced_provision",
    "render_report",
    "provision_iteratively",
    "run_experiment",
    "simulate",
]
