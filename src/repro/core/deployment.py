"""Deployment runtime: an application bound to a cluster.

A :class:`Deployment` places service replicas on machines, routes
requests through per-service load balancers, and executes operation
call trees as simulation processes: request transfer → worker admission
→ compute → downstream groups (sequential groups of parallel calls) →
compute → response transfer, producing a full distributed trace per
end-to-end request.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional

from ..cluster.cluster import Cluster
from ..cluster.loadbalancer import KeyHash, LeastOutstanding, LoadBalancer, RoundRobin
from ..cluster.machine import ServiceInstance
from ..cluster.placement import BinPackPlacer, SpreadPlacer
from ..net.fabric import NetworkFabric
from ..net.protocols import costs_for
from ..services.app import Application
from ..services.calltree import CallNode
from ..sim.engine import Environment, Process
from ..sim.resources import Resource
from ..sim.rng import RandomStreams
from ..tracing.collector import TraceCollector
from ..tracing.span import Span, Trace

__all__ = ["Deployment"]

_LB_POLICIES = {
    "round_robin": RoundRobin,
    "least_outstanding": LeastOutstanding,
    "key_hash": KeyHash,
}


class Deployment:
    """A running instance of an application on a cluster."""

    def __init__(self, env: Environment, app: Application, cluster: Cluster,
                 replicas: Optional[Dict[str, int]] = None,
                 cores: Optional[Dict[str, int]] = None,
                 seed: int = 0,
                 fabric: Optional[NetworkFabric] = None,
                 collector: Optional[TraceCollector] = None,
                 default_replicas: int = 1,
                 default_cores: int = 2,
                 lb_policy: str = "round_robin",
                 placement: str = "spread",
                 share_machine_cpu: bool = False):
        if lb_policy not in _LB_POLICIES:
            raise ValueError(f"unknown lb policy {lb_policy!r}")
        if placement not in ("spread", "binpack"):
            raise ValueError(f"unknown placement policy {placement!r}")
        self.env = env
        self.app = app
        self.cluster = cluster
        self.rng = RandomStreams(seed)
        self.fabric = fabric or NetworkFabric(env, rng=self.rng)
        self.collector = collector or TraceCollector()
        self.costs = costs_for(app.protocol)
        self.replicas = dict(replicas or {})
        self.cores = dict(cores or {})
        self.default_replicas = default_replicas
        self.default_cores = default_cores
        self.lb_policy = lb_policy
        #: Colocation mode: instances share their machine's core pool
        #: instead of owning pinned cores (interference between
        #: bin-packed neighbours becomes visible).
        self.share_machine_cpu = share_machine_cpu
        #: Runtime work multipliers for fault injection (Fig. 19): a
        #: value of 5.0 makes the tier 5x slower without restarts.
        self.work_multiplier: Dict[str, float] = defaultdict(lambda: 1.0)
        #: Per-operation multipliers: a code-level bug confined to one
        #: request type (the fair way to inject the same fault into a
        #: monolith, where the buggy function is one slice of the
        #: binary's work on that operation).
        self.op_work_multiplier: Dict[str, float] = defaultdict(
            lambda: 1.0)
        #: Pure-latency stalls per service (seconds): the tier waits —
        #: a sick disk, a lock, a colocated antagonist — WITHOUT
        #: burning its own CPU.  This is how a tier can be slow while
        #: its utilization stays low (Fig. 17 case B, Fig. 19).
        self.extra_delay: Dict[str, float] = defaultdict(lambda: 0.0)
        #: Synchronous worker threads busy-wait while blocked on
        #: downstream calls (polling/spinning), burning this fraction
        #: of a core each.  Applies to tiers with a worker pool under a
        #: blocking protocol — it is why a backpressured front tier
        #: *looks* CPU-saturated to a utilization autoscaler.
        self.sync_busy_wait = 0.8
        self._instances: Dict[str, List[ServiceInstance]] = {}
        self._lbs: Dict[str, LoadBalancer] = {}
        self._conn_pools: Dict[tuple, Resource] = {}
        placer_cls = SpreadPlacer if placement == "spread" \
            else BinPackPlacer
        self._placers = {}
        for zone in {self.app.zone_of(s) for s in app.services}:
            machines = cluster.zone(zone)
            if machines:
                self._placers[zone] = placer_cls(machines)
        self._place_all()

    # -- placement ----------------------------------------------------------
    def _place_one(self, service: str) -> ServiceInstance:
        zone = self.app.zone_of(service)
        placer = self._placers.get(zone)
        if placer is None:
            raise ValueError(
                f"no machines in zone {zone!r} for service {service!r}")
        definition = self.app.services[service]
        cores = self.cores.get(service, self.default_cores)
        machine = placer.place(definition, cores)
        inst = ServiceInstance(self.env, definition, machine, cores=cores,
                               share_machine_cpu=self.share_machine_cpu)
        if definition.max_workers is not None:
            inst.set_workers(definition.max_workers)
        return inst

    def _place_all(self) -> None:
        for service in self.app.services:
            count = self.replicas.get(service, self.default_replicas)
            if count < 1:
                raise ValueError(f"replicas for {service!r} must be >= 1")
            instances = [self._place_one(service) for _ in range(count)]
            self._instances[service] = instances
            sharded = service in self.app.sharded_services
            policy = KeyHash if sharded else _LB_POLICIES[self.lb_policy]
            self._lbs[service] = policy(instances)

    # -- management API (used by the autoscaler and fault injectors) -------
    def service_names(self) -> List[str]:
        """All deployed services."""
        return list(self._instances.keys())

    def instances_of(self, service: str) -> List[ServiceInstance]:
        """Current replicas of a service."""
        return self._instances[service]

    def load_balancer(self, service: str) -> LoadBalancer:
        """The balancer routing to a service's replicas."""
        return self._lbs[service]

    def add_instance(self, service: str) -> ServiceInstance:
        """Scale a tier out by one replica."""
        inst = self._place_one(service)
        self._instances[service].append(inst)
        self._lbs[service].add(inst)
        return inst

    def remove_instance(self, service: str) -> None:
        """Scale a tier in by one replica (never below one)."""
        instances = self._instances[service]
        if len(instances) <= 1:
            raise ValueError(f"cannot scale {service!r} below one replica")
        inst = instances.pop()
        self._lbs[service].remove(inst)
        inst.detach()

    def slow_down_service(self, service: str, factor: float) -> None:
        """Inflate one tier's compute cost by ``factor`` (Fig. 19)."""
        if factor <= 0:
            raise ValueError("factor must be > 0")
        self.work_multiplier[service] = factor

    def slow_down_operation(self, op_name: str, factor: float) -> None:
        """Inflate all compute of one request type by ``factor``."""
        if factor <= 0:
            raise ValueError("factor must be > 0")
        if op_name not in self.app.operations:
            raise KeyError(f"unknown operation {op_name!r}")
        self.op_work_multiplier[op_name] = factor

    def delay_service(self, service: str, extra_seconds: float) -> None:
        """Add a pure-latency stall to every request at one tier.

        Unlike :meth:`slow_down_service`, the stall burns no CPU: the
        tier's utilization stays low while its latency grows — the
        'seemingly negligible bottleneck' of Fig. 17 case B."""
        if extra_seconds < 0:
            raise ValueError("extra_seconds must be >= 0")
        self.extra_delay[service] = extra_seconds

    def utilization(self, service: str) -> float:
        """Mean instantaneous CPU utilization across a tier's replicas."""
        instances = self._instances[service]
        return sum(i.utilization() for i in instances) / len(instances)

    def total_cpu_seconds(self) -> Dict[str, Dict[str, float]]:
        """service -> {app, net} nominal CPU seconds consumed so far."""
        out: Dict[str, Dict[str, float]] = {}
        for service, instances in self._instances.items():
            out[service] = {
                "app": sum(i.app_cpu_seconds for i in instances),
                "net": sum(i.net_cpu_seconds for i in instances),
            }
        return out

    # -- execution ---------------------------------------------------------
    def _conn_pool(self, client: ServiceInstance, service: str) -> Resource:
        key = (client.instance_id, service)
        pool = self._conn_pools.get(key)
        if pool is None:
            pool = Resource(self.env,
                            capacity=self.costs.connections_per_pair)
            self._conn_pools[key] = pool
        return pool

    def _sample_work(self, node: CallNode, operation: str) -> float:
        definition = self.app.services[node.service]
        mean = (definition.work_mean * node.work_scale
                * self.work_multiplier[node.service]
                * self.op_work_multiplier[operation])
        if mean <= 0:
            return 0.0
        return self.rng.lognormal(f"work.{node.service}", mean,
                                  definition.work_cv)

    def _run_node(self, node: CallNode, caller: Optional[ServiceInstance],
                  operation: str, user: Optional[int]):
        definition = self.app.services[node.service]
        key = user if node.service in self.app.sharded_services else None
        inst = self._lbs[node.service].pick(key=key)
        span = Span(service=node.service, operation=operation,
                    start=self.env.now)
        inst.outstanding += 1
        conn = None
        worker = None
        try:
            # HTTP/1 blocking connection between caller and this tier.
            if self.costs.blocking_connections and caller is not None:
                pool = self._conn_pool(caller, node.service)
                t0 = self.env.now
                conn = pool.request()
                yield conn
                span.block_time += self.env.now - t0

            timing_req = yield from self.fabric.transfer(
                caller, inst, node.request_kb, self.costs)

            if inst.workers is not None:
                t0 = self.env.now
                worker = inst.workers.request()
                yield worker
                span.block_time += self.env.now - t0

            work = self._sample_work(node, operation)
            pre = work * node.pre_fraction
            if pre > 0:
                t0 = self.env.now
                yield inst.compute(pre)
                span.app_time += self.env.now - t0

            stall = self.extra_delay[node.service]
            if stall > 0:
                t0 = self.env.now
                yield self.env.timeout(
                    self.rng.lognormal(f"stall.{node.service}", stall,
                                       0.2))
                span.app_time += self.env.now - t0

            heater_stop = None
            if (node.groups and worker is not None
                    and self.costs.blocking_connections
                    and self.sync_busy_wait > 0):
                heater_stop = self.env.event()
                self.env.process(
                    self._busy_wait(inst, heater_stop),
                    name="busy-wait")
            try:
                for group in node.groups:
                    if len(group) == 1:
                        child = yield from self._run_node(
                            group[0], inst, operation, user)
                        span.children.append(child)
                    else:
                        procs = [
                            self.env.process(
                                self._run_node(child, inst, operation,
                                               user))
                            for child in group
                        ]
                        results = yield self.env.all_of(procs)
                        span.children.extend(results[i]
                                             for i in range(len(procs)))
            finally:
                if heater_stop is not None:
                    heater_stop.succeed()

            post = work - work * node.pre_fraction
            if post > 0:
                t0 = self.env.now
                yield inst.compute(post)
                span.app_time += self.env.now - t0

            timing_resp = yield from self.fabric.transfer(
                inst, caller, node.response_kb, self.costs)
            span.net_time += timing_req.total + timing_resp.total
            for timing in (timing_req, timing_resp):
                span.net_process_time += (timing.cpu_send
                                          + timing.cpu_recv
                                          + timing.offload)
        finally:
            if worker is not None:
                worker.release()
            if conn is not None:
                conn.release()
            inst.outstanding -= 1
        span.end = self.env.now
        return span

    def _busy_wait(self, inst: ServiceInstance, stop):
        """A synchronous worker spinning while its downstream call is
        outstanding: burn ``sync_busy_wait`` of a core in small quanta
        until ``stop`` triggers."""
        quantum = 1e-3
        frac = self.sync_busy_wait
        while not stop.triggered:
            yield inst.cpu.service(quantum * frac)
            if stop.triggered:
                break
            yield self.env.timeout(quantum * (1.0 - frac))

    def _run_operation(self, op_name: str, user: Optional[int]):
        op = self.app.operations[op_name]
        root_span = yield from self._run_node(op.root, None, op_name, user)
        trace = Trace(operation=op_name, root=root_span, user=user)
        self.collector.collect(trace)
        return trace

    def execute(self, op_name: str,
                user: Optional[int] = None) -> Process:
        """Launch one end-to-end request; the returned process event's
        value is the finished :class:`~repro.tracing.span.Trace`."""
        if op_name not in self.app.operations:
            raise KeyError(f"unknown operation {op_name!r}")
        return self.env.process(self._run_operation(op_name, user),
                                name=f"{self.app.name}.{op_name}")
