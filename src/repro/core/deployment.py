"""Deployment runtime: an application bound to a cluster.

A :class:`Deployment` places service replicas on machines, routes
requests through per-service load balancers, and executes operation
call trees as simulation processes: request transfer → worker admission
→ compute → downstream groups (sequential groups of parallel calls) →
compute → response transfer, producing a full distributed trace per
end-to-end request.

RPCs have failure semantics (see :mod:`repro.resilience`): a call can
time out at the caller, fail at the callee (injected error rate or a
failed downstream), be rejected fast by an open circuit breaker, or be
cancelled once its end-to-end deadline expires.  Per-service
:class:`~repro.resilience.ResiliencePolicy` objects configure timeouts,
bounded retries with backoff and retry budgets, deadline propagation,
and per-edge breakers; a front-tier :class:`~repro.resilience.LoadShedder`
bounds admitted concurrency.  Without policies the execution path is
byte-for-byte the historical infallible one.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Tuple

from ..cluster.cluster import Cluster
from ..cluster.loadbalancer import KeyHash, LeastOutstanding, LoadBalancer, RoundRobin
from ..cluster.machine import ServiceInstance
from ..cluster.placement import BinPackPlacer, SpreadPlacer
from ..net.fabric import NetworkFabric
from ..net.protocols import costs_for
from ..resilience import (
    FALLBACK_STALE_CACHE,
    STATUS_DEADLINE,
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_OPEN,
    STATUS_SHED,
    STATUS_TIMEOUT,
    CircuitBreaker,
    DegradationManager,
    LoadShedder,
    RequestContext,
    ResiliencePolicy,
    RetryBudget,
)
from ..services.app import Application
from ..services.calltree import CallNode
from ..sim.engine import Environment, Process
from ..sim.resources import Resource
from ..sim.rng import RandomStreams
from ..tracing.collector import TraceCollector
from ..tracing.span import Span, Trace

__all__ = ["Deployment"]

_LB_POLICIES = {
    "round_robin": RoundRobin,
    "least_outstanding": LeastOutstanding,
    "key_hash": KeyHash,
}


class Deployment:
    """A running instance of an application on a cluster."""

    def __init__(self, env: Environment, app: Application, cluster: Cluster,
                 replicas: Optional[Dict[str, int]] = None,
                 cores: Optional[Dict[str, int]] = None,
                 seed: int = 0,
                 fabric: Optional[NetworkFabric] = None,
                 collector: Optional[TraceCollector] = None,
                 default_replicas: int = 1,
                 default_cores: int = 2,
                 lb_policy: str = "round_robin",
                 placement: str = "spread",
                 share_machine_cpu: bool = False,
                 policies: Optional[Dict[str, ResiliencePolicy]] = None,
                 default_policy: Optional[ResiliencePolicy] = None,
                 shedder: Optional[LoadShedder] = None,
                 degradation: Optional[DegradationManager] = None):
        if lb_policy not in _LB_POLICIES:
            raise ValueError(f"unknown lb policy {lb_policy!r}")
        if placement not in ("spread", "binpack"):
            raise ValueError(f"unknown placement policy {placement!r}")
        self.env = env
        self.app = app
        self.cluster = cluster
        self.rng = RandomStreams(seed)
        self.fabric = fabric or NetworkFabric(env, rng=self.rng)
        self.collector = collector or TraceCollector()
        self.costs = costs_for(app.protocol)
        self.replicas = dict(replicas or {})
        self.cores = dict(cores or {})
        self.default_replicas = default_replicas
        self.default_cores = default_cores
        self.lb_policy = lb_policy
        #: Colocation mode: instances share their machine's core pool
        #: instead of owning pinned cores (interference between
        #: bin-packed neighbours becomes visible).
        self.share_machine_cpu = share_machine_cpu
        #: Runtime work multipliers for fault injection (Fig. 19): a
        #: value of 5.0 makes the tier 5x slower without restarts.
        self.work_multiplier: Dict[str, float] = defaultdict(lambda: 1.0)
        #: Per-operation multipliers: a code-level bug confined to one
        #: request type (the fair way to inject the same fault into a
        #: monolith, where the buggy function is one slice of the
        #: binary's work on that operation).
        self.op_work_multiplier: Dict[str, float] = defaultdict(
            lambda: 1.0)
        #: Pure-latency stalls per service (seconds): the tier waits —
        #: a sick disk, a lock, a colocated antagonist — WITHOUT
        #: burning its own CPU.  This is how a tier can be slow while
        #: its utilization stays low (Fig. 17 case B, Fig. 19).
        self.extra_delay: Dict[str, float] = defaultdict(lambda: 0.0)
        #: Synchronous worker threads busy-wait while blocked on
        #: downstream calls (polling/spinning), burning this fraction
        #: of a core each.  Applies to tiers with a worker pool under a
        #: blocking protocol — it is why a backpressured front tier
        #: *looks* CPU-saturated to a utilization autoscaler.
        self.sync_busy_wait = 0.8
        #: Per-service probability that one RPC attempt fails after its
        #: pre-compute (fault injection for the resilience experiments).
        self.error_rate: Dict[str, float] = defaultdict(lambda: 0.0)
        #: Per-cache-tier hit/miss tallies (``Counter`` with ``hit`` /
        #: ``miss`` keys), populated once :meth:`set_cache_hit_ratio`
        #: arms a tier.  The observability layer exports these as
        #: ``repro_cache_requests_total`` / ``repro_cache_hit_ratio``.
        self.cache_stats: Dict[str, Counter] = {}
        self._cache_model: Dict[str, Tuple[float, float]] = {}
        #: Resilience policies keyed by *callee* service; the default
        #: applies to every service without an explicit entry.
        self.policies: Dict[str, ResiliencePolicy] = dict(policies or {})
        self.default_policy = default_policy
        #: Front-tier admission control; ``None`` admits everything.
        self.shedder = shedder
        #: Graceful-degradation manager (criticality-aware shedding,
        #: subtree drops, fallbacks, brownout); ``None`` = full
        #: fidelity or error, the historical binary behaviour.
        self.degradation = degradation
        if degradation is not None:
            degradation.bind(self.env, shedder)
        #: Counters for retry/timeout/breaker/shed/deadline events.
        self.resilience_stats: Counter = Counter()
        self._breakers: Dict[Tuple, CircuitBreaker] = {}
        self._retry_budgets: Dict[str, RetryBudget] = {}
        self._instances: Dict[str, List[ServiceInstance]] = {}
        self._lbs: Dict[str, LoadBalancer] = {}
        self._conn_pools: Dict[tuple, Resource] = {}
        placer_cls = SpreadPlacer if placement == "spread" \
            else BinPackPlacer
        self._placers = {}
        for zone in sorted({self.app.zone_of(s) for s in app.services}):
            machines = cluster.zone(zone)
            if machines:
                self._placers[zone] = placer_cls(machines)
        self._place_all()

    # -- placement ----------------------------------------------------------
    def _place_one(self, service: str) -> ServiceInstance:
        zone = self.app.zone_of(service)
        placer = self._placers.get(zone)
        if placer is None:
            raise ValueError(
                f"no machines in zone {zone!r} for service {service!r}")
        definition = self.app.services[service]
        cores = self.cores.get(service, self.default_cores)
        machine = placer.place(definition, cores)
        inst = ServiceInstance(self.env, definition, machine, cores=cores,
                               share_machine_cpu=self.share_machine_cpu)
        if definition.max_workers is not None:
            inst.set_workers(definition.max_workers)
        return inst

    def _place_all(self) -> None:
        for service in self.app.services:
            count = self.replicas.get(service, self.default_replicas)
            if count < 1:
                raise ValueError(f"replicas for {service!r} must be >= 1")
            instances = [self._place_one(service) for _ in range(count)]
            self._instances[service] = instances
            sharded = service in self.app.sharded_services
            policy = KeyHash if sharded else _LB_POLICIES[self.lb_policy]
            self._lbs[service] = policy(instances)

    # -- management API (used by the autoscaler and fault injectors) -------
    def service_names(self) -> List[str]:
        """All deployed services."""
        return list(self._instances.keys())

    def instances_of(self, service: str) -> List[ServiceInstance]:
        """Current replicas of a service."""
        return self._instances[service]

    def load_balancer(self, service: str) -> LoadBalancer:
        """The balancer routing to a service's replicas."""
        return self._lbs[service]

    def add_instance(self, service: str) -> ServiceInstance:
        """Scale a tier out by one replica."""
        inst = self._place_one(service)
        self._instances[service].append(inst)
        self._lbs[service].add(inst)
        return inst

    def remove_instance(self, service: str,
                        inst: Optional[ServiceInstance] = None) -> None:
        """Scale a tier in by one replica (never below one).

        Without ``inst`` the newest replica goes (autoscaler scale-in);
        with it, that specific replica is decommissioned — how failover
        retires a dead replica once its replacement is live."""
        instances = self._instances[service]
        if len(instances) <= 1:
            raise ValueError(f"cannot scale {service!r} below one replica")
        if inst is None:
            inst = instances.pop()
        else:
            if inst not in instances:
                raise ValueError(
                    f"{inst.instance_id} is not a replica of {service!r}")
            instances.remove(inst)
        lb = self._lbs[service]
        if inst in lb.instances:
            lb.remove(inst)
        inst.detach()

    def slow_down_service(self, service: str, factor: float) -> None:
        """Inflate one tier's compute cost by ``factor`` (Fig. 19)."""
        if factor <= 0:
            raise ValueError("factor must be > 0")
        self.work_multiplier[service] = factor

    def slow_down_operation(self, op_name: str, factor: float) -> None:
        """Inflate all compute of one request type by ``factor``."""
        if factor <= 0:
            raise ValueError("factor must be > 0")
        if op_name not in self.app.operations:
            raise KeyError(f"unknown operation {op_name!r}")
        self.op_work_multiplier[op_name] = factor

    def delay_service(self, service: str, extra_seconds: float) -> None:
        """Add a pure-latency stall to every request at one tier.

        Unlike :meth:`slow_down_service`, the stall burns no CPU: the
        tier's utilization stays low while its latency grows — the
        'seemingly negligible bottleneck' of Fig. 17 case B."""
        if extra_seconds < 0:
            raise ValueError("extra_seconds must be >= 0")
        self.extra_delay[service] = extra_seconds

    def inject_error_rate(self, service: str, rate: float) -> None:
        """Make a fraction of one tier's RPC attempts fail outright."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        if service not in self.app.services:
            raise KeyError(f"unknown service {service!r}")
        self.error_rate[service] = rate

    def set_cache_hit_ratio(self, service: str, ratio: float,
                            miss_penalty: float = 4.0) -> None:
        """Arm per-request hit/miss sampling at one cache tier.

        Each request to ``service`` draws a Bernoulli(``ratio``) hit
        from the tier's own RNG stream; a miss inflates that request's
        sampled work by ``miss_penalty`` (the backend fetch the cache
        performs on your behalf).  Pick ``ratio`` with the Che
        approximation (:mod:`repro.analytic.cache`).  Unarmed tiers
        draw no extra randomness, so existing runs stay byte-identical.
        """
        if not 0.0 <= ratio <= 1.0:
            raise ValueError("ratio must be in [0, 1]")
        if miss_penalty <= 0:
            raise ValueError("miss_penalty must be > 0")
        if service not in self.app.services:
            raise KeyError(f"unknown service {service!r}")
        self._cache_model[service] = (ratio, miss_penalty)
        self.cache_stats.setdefault(service, Counter())

    def cache_model_of(self, service: str) -> Optional[Tuple[float, float]]:
        """The ``(hit_ratio, miss_penalty)`` armed at a cache tier, or
        None.  Chaos cold-restart faults read this to ramp a restarted
        cache from cold back to its configured warm ratio."""
        return self._cache_model.get(service)

    # -- resilience configuration ------------------------------------------
    def set_policy(self, policy: Optional[ResiliencePolicy],
                   service: Optional[str] = None) -> None:
        """Install a resilience policy for one callee service, or (with
        ``service=None``) as the default for every service."""
        if service is None:
            self.default_policy = policy
            return
        if service not in self.app.services:
            raise KeyError(f"unknown service {service!r}")
        if policy is None:
            self.policies.pop(service, None)
        else:
            self.policies[service] = policy

    def policy_for(self, service: str) -> Optional[ResiliencePolicy]:
        """The policy callers apply to RPCs into ``service``."""
        return self.policies.get(service, self.default_policy)

    def set_shedder(self, shedder: Optional[LoadShedder]) -> None:
        """Install (or remove) front-tier admission control."""
        self.shedder = shedder

    def set_degradation(self,
                        manager: Optional[DegradationManager]) -> None:
        """Arm graceful degradation (binds the brownout controller to
        this deployment's clock and shedder).  Must be called before
        traffic starts; the tick process runs for the rest of the sim."""
        self.degradation = manager
        if manager is not None:
            manager.bind(self.env, self.shedder)

    def breaker_for(self, caller: str, callee: str,
                    instance_id: Optional[str] = None) -> Optional[CircuitBreaker]:
        """The breaker guarding one call edge, if it exists yet."""
        key = (caller, callee) if instance_id is None \
            else (caller, callee, instance_id)
        return self._breakers.get(key)

    def breakers(self) -> Dict[Tuple, CircuitBreaker]:
        """All instantiated breakers, keyed by edge."""
        return dict(self._breakers)

    def retry_budget_for(self, service: str) -> Optional[RetryBudget]:
        """The shared retry budget for one callee service, if any."""
        return self._retry_budgets.get(service)

    def retry_budgets(self) -> Dict[str, RetryBudget]:
        """All instantiated retry budgets, keyed by callee service."""
        return dict(self._retry_budgets)

    def utilization(self, service: str) -> float:
        """Mean instantaneous CPU utilization across a tier's replicas."""
        instances = self._instances[service]
        return sum(i.utilization() for i in instances) / len(instances)

    def total_cpu_seconds(self) -> Dict[str, Dict[str, float]]:
        """service -> {app, net} nominal CPU seconds consumed so far."""
        out: Dict[str, Dict[str, float]] = {}
        for service, instances in self._instances.items():
            out[service] = {
                "app": sum(i.app_cpu_seconds for i in instances),
                "net": sum(i.net_cpu_seconds for i in instances),
            }
        return out

    # -- execution ---------------------------------------------------------
    def _conn_pool(self, client: ServiceInstance, service: str) -> Resource:
        key = (client.instance_id, service)
        pool = self._conn_pools.get(key)
        if pool is None:
            pool = Resource(self.env,
                            capacity=self.costs.connections_per_pair)
            self._conn_pools[key] = pool
        return pool

    def _sample_work(self, node: CallNode, operation: str) -> float:
        definition = self.app.services[node.service]
        mean = (definition.work_mean * node.work_scale
                * self.work_multiplier[node.service]
                * self.op_work_multiplier[operation])
        cache = self._cache_model.get(node.service)
        if cache is not None:
            ratio, penalty = cache
            stats = self.cache_stats[node.service]
            if self.rng.uniform(f"cache.{node.service}", 0.0,
                                1.0) < ratio:
                stats["hit"] += 1
            else:
                stats["miss"] += 1
                mean *= penalty
        if mean <= 0:
            return 0.0
        return self.rng.lognormal(f"work.{node.service}", mean,
                                  definition.work_cv)

    def _expired(self, ctx: Optional[RequestContext]) -> bool:
        """Deadline check at a tier's scheduling points."""
        return (ctx is not None and ctx.propagate
                and ctx.expired(self.env.now))

    def _abort(self, span: Span, status: str) -> Span:
        """Finish a span in a failure state."""
        span.status = status
        span.end = self.env.now
        if status == STATUS_DEADLINE:
            self.resilience_stats["deadline_aborts"] += 1
        return span

    def _run_node(self, node: CallNode, caller: Optional[ServiceInstance],
                  operation: str, user: Optional[int],
                  ctx: Optional[RequestContext] = None,
                  inst: Optional[ServiceInstance] = None):
        definition = self.app.services[node.service]
        if inst is None:
            key = user if node.service in self.app.sharded_services else None
            inst = self._lbs[node.service].pick(key=key)
        span = Span(service=node.service, operation=operation,
                    start=self.env.now)
        # Injected application error for this attempt (sampled only when
        # a fault is configured, so healthy runs draw no extra RNG).
        rate = self.error_rate[node.service]
        will_fail = rate > 0.0 and self.rng.uniform(
            f"error.{node.service}", 0.0, 1.0) < rate
        inst.outstanding += 1
        conn = None
        worker = None
        try:
            # HTTP/1 blocking connection between caller and this tier.
            if self.costs.blocking_connections and caller is not None:
                pool = self._conn_pool(caller, node.service)
                t0 = self.env.now
                conn = pool.request()
                yield conn
                span.block_time += self.env.now - t0

            timing_req = yield from self.fabric.transfer(
                caller, inst, node.request_kb, self.costs)

            if inst.workers is not None:
                t0 = self.env.now
                worker = inst.workers.request()
                yield worker
                span.block_time += self.env.now - t0

            if self._expired(ctx):
                return self._abort(span, STATUS_DEADLINE)

            work = self._sample_work(node, operation)
            pre = work * node.pre_fraction
            if pre > 0:
                t0 = self.env.now
                yield inst.compute(pre)
                span.app_time += self.env.now - t0

            stall = self.extra_delay[node.service]
            if stall > 0:
                t0 = self.env.now
                yield self.env.timeout(
                    self.rng.lognormal(f"stall.{node.service}", stall,
                                       0.2))
                span.app_time += self.env.now - t0

            if will_fail:
                # The error surfaces after the pre-compute: a failed
                # request still cost the tier real CPU.
                self.resilience_stats["errors_injected"] += 1
                return self._abort(span, STATUS_ERROR)

            if self._expired(ctx):
                return self._abort(span, STATUS_DEADLINE)

            heater_stop = None
            if (node.groups and worker is not None
                    and self.costs.blocking_connections
                    and self.sync_busy_wait > 0):
                heater_stop = self.env.event()
                self.env.process(
                    self._busy_wait(inst, heater_stop),
                    name="busy-wait")
            failed: Optional[str] = None
            try:
                for group in node.groups:
                    if self._expired(ctx):
                        failed = STATUS_DEADLINE
                        break
                    if self.degradation is not None and ctx is not None:
                        group = self._degrade_group(group, span, ctx)
                        if not group:
                            continue
                    if len(group) == 1:
                        child = yield from self._dispatch(
                            group[0], inst, operation, user, ctx)
                        span.children.append(child)
                        if child.status not in (STATUS_OK,
                                                STATUS_DEGRADED):
                            failed = child.status
                            break
                    else:
                        procs = [
                            self.env.process(
                                self._dispatch(child, inst, operation,
                                               user, ctx))
                            for child in group
                        ]
                        results = yield self.env.all_of(procs)
                        children = [results[i] for i in range(len(procs))]
                        span.children.extend(children)
                        bad = next((c for c in children
                                    if c.status not in (STATUS_OK,
                                                        STATUS_DEGRADED)),
                                   None)
                        if bad is not None:
                            failed = bad.status
                            break
            finally:
                if heater_stop is not None:
                    heater_stop.succeed()

            if failed is not None:
                # A downstream call failed terminally: propagate upward
                # (the caller's own policy may retry this whole node).
                status = STATUS_DEADLINE if failed == STATUS_DEADLINE \
                    else STATUS_ERROR
                return self._abort(span, status)

            post = work - work * node.pre_fraction
            if post > 0:
                t0 = self.env.now
                yield inst.compute(post)
                span.app_time += self.env.now - t0

            if self._expired(ctx):
                return self._abort(span, STATUS_DEADLINE)

            timing_resp = yield from self.fabric.transfer(
                inst, caller, node.response_kb, self.costs)
            span.net_time += timing_req.total + timing_resp.total
            for timing in (timing_req, timing_resp):
                span.net_process_time += (timing.cpu_send
                                          + timing.cpu_recv
                                          + timing.offload)
        finally:
            if worker is not None:
                worker.release()
            if conn is not None:
                conn.release()
            inst.outstanding -= 1
        span.end = self.env.now
        return span

    # -- graceful degradation ----------------------------------------------
    def _degrade_group(self, group, span: Span,
                       ctx: RequestContext) -> List[CallNode]:
        """Apply subtree drops and fan-out reduction to one call group.

        Deterministic (no RNG): drops are level-gated per policy, and
        fan-out trimming keeps the *first* k trimmable shards in
        declaration order.  Sacrificed services are recorded on the
        parent span's ``dropped`` annotation and cost the request
        fidelity."""
        mgr = self.degradation
        crit = ctx.criticality
        kept: List[CallNode] = []
        dropped: List[str] = []
        for child in group:
            if mgr.maybe_drop(child.service, crit):
                dropped.append(child.service)
                ctx.degrade(mgr.policies[child.service].fidelity_cost)
                self.resilience_stats["subtrees_dropped"] += 1
            else:
                kept.append(child)
        if len(kept) > 1:
            keep = mgr.fanout_keep([c.service for c in kept], crit)
            if keep is not None:
                trimmable = [c for c in kept
                             if mgr.can_trim(c.service, crit)]
                for child in trimmable[keep:]:
                    mgr.note_fanout_cut(child.service)
                    ctx.degrade(
                        mgr.policies[child.service].fidelity_cost)
                    self.resilience_stats["fanout_trimmed"] += 1
                    dropped.append(child.service)
                    kept.remove(child)
        if dropped:
            prev = span.annotations.get("dropped")
            joined = ",".join(dropped)
            span.annotations["dropped"] = \
                f"{prev},{joined}" if prev else joined
        return kept

    def _apply_fallback(self, node: CallNode, span: Span,
                        ctx: Optional[RequestContext]) -> Span:
        """Mask a terminal RPC failure with the callee's declared
        fallback: the span keeps its (real) cost but finishes
        ``degraded`` instead of failing the parent."""
        mgr = self.degradation
        if (mgr is None or ctx is None
                or span.status not in (STATUS_TIMEOUT, STATUS_ERROR,
                                       STATUS_OPEN)):
            return span
        pol = mgr.fallback_for(node.service)
        if pol is None:
            return span
        span.annotations["fallback"] = pol.fallback
        span.annotations["fallback_from"] = span.status
        if pol.fallback == FALLBACK_STALE_CACHE:
            # Compose with the region layer's staleness accounting:
            # a stale answer is honestly labelled wherever it comes
            # from (replication lag or a degradation fallback).
            span.annotations["stale_read"] = True
        span.status = STATUS_DEGRADED
        span.end = self.env.now
        ctx.degrade(pol.fidelity_cost)
        mgr.note_fallback(pol.fallback)
        self.resilience_stats["fallbacks_served"] += 1
        return span

    # -- resilience wrapper ------------------------------------------------
    def _dispatch(self, node: CallNode,
                  caller: Optional[ServiceInstance], operation: str,
                  user: Optional[int], ctx: Optional[RequestContext]):
        """Route one call through its callee's policy (if any)."""
        policy = self.policies.get(node.service, self.default_policy)
        if policy is None:
            span = yield from self._run_node(node, caller, operation,
                                             user, ctx)
        else:
            span = yield from self._call_with_policy(
                node, caller, operation, user, ctx, policy)
        return self._apply_fallback(node, span, ctx)

    def _fast_span(self, service: str, operation: str, status: str,
                   retries: int) -> Span:
        """A zero-duration client-side failure (shed/open/deadline)."""
        span = Span(service=service, operation=operation,
                    start=self.env.now, end=self.env.now, status=status,
                    retries=retries)
        return span

    def _breaker(self, key: Tuple, config) -> CircuitBreaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(self.env, config)
            self._breakers[key] = breaker
        return breaker

    def _budget_for(self, service: str,
                    policy: ResiliencePolicy) -> Optional[RetryBudget]:
        if policy.retry_budget_ratio is None:
            return None
        budget = self._retry_budgets.get(service)
        if budget is None:
            budget = policy.make_budget()
            self._retry_budgets[service] = budget
        return budget

    def _admit_through_breaker(self, caller_name: str, node: CallNode,
                               user: Optional[int],
                               policy: ResiliencePolicy):
        """Pick an instance (if per-instance) and consult its breaker.

        Returns ``(admitted, instance, breaker)``; ``instance`` is None
        for service-level breakers (the node picks its own replica)."""
        service = node.service
        cfg = policy.breaker
        if cfg.per_instance:
            key = user if service in self.app.sharded_services else None
            lb = self._lbs[service]
            inst = lb.pick(key=key)
            breaker = self._breaker(
                (caller_name, service, inst.instance_id), cfg)
            if breaker.allow():
                return True, inst, breaker
            # Outlier ejection: the chosen replica's breaker is open —
            # take any replica whose breaker still admits.
            for cand in lb.instances:
                if cand is inst:
                    continue
                alt = self._breaker(
                    (caller_name, service, cand.instance_id), cfg)
                if alt.allow():
                    return True, cand, alt
            return False, None, None
        breaker = self._breaker((caller_name, service), cfg)
        if breaker.allow():
            return True, None, breaker
        return False, None, None

    def _call_with_policy(self, node: CallNode,
                          caller: Optional[ServiceInstance],
                          operation: str, user: Optional[int],
                          ctx: Optional[RequestContext],
                          policy: ResiliencePolicy):
        """One logical call = up to ``1 + max_retries`` attempts, each
        raced against the per-RPC timeout, gated by breakers and the
        retry budget.  Always returns a span; never raises."""
        service = node.service
        caller_name = caller.definition.name if caller is not None \
            else "client"
        budget = self._budget_for(service, policy)
        if budget is not None:
            budget.on_request()
        retries = 0
        while True:
            if ctx is not None and ctx.expired(self.env.now):
                span = self._fast_span(service, operation,
                                       STATUS_DEADLINE, retries)
                self.resilience_stats["deadline_aborts"] += 1
                return span
            inst = None
            breaker = None
            if policy.breaker is not None:
                admitted, inst, breaker = self._admit_through_breaker(
                    caller_name, node, user, policy)
                if not admitted:
                    self.resilience_stats["breaker_rejected"] += 1
                    return self._fast_span(service, operation,
                                           STATUS_OPEN, retries)
            start = self.env.now
            attempt = self.env.process(
                self._run_node(node, caller, operation, user, ctx,
                               inst=inst),
                name=f"rpc.{service}")
            if policy.rpc_timeout is not None:
                yield self.env.any_of(
                    [attempt, self.env.timeout(policy.rpc_timeout)])
            else:
                yield attempt
            if attempt.triggered:
                span = attempt.value
                if breaker is not None and span.status != STATUS_DEADLINE:
                    breaker.record(span.status == STATUS_OK)
                if span.status in (STATUS_OK, STATUS_DEADLINE):
                    span.retries = retries
                    return span
            else:
                # Client-side timeout.  The attempt is *abandoned*, not
                # cancelled: the server keeps consuming CPU for it
                # unless deadline propagation stops the work — the
                # wasted-work feedback loop behind metastable failure.
                self.resilience_stats["timeouts"] += 1
                span = Span(service=service, operation=operation,
                            start=start, end=self.env.now,
                            status=STATUS_TIMEOUT)
                if breaker is not None:
                    breaker.record(False)
            span.retries = retries
            if retries >= policy.max_retries:
                return span
            if ctx is not None and ctx.expired(self.env.now):
                return span
            if budget is not None and not budget.try_retry():
                self.resilience_stats["retry_budget_exhausted"] += 1
                return span
            retries += 1
            self.resilience_stats["retries"] += 1
            delay = policy.backoff_delay(retries, self.rng)
            if delay > 0:
                yield self.env.timeout(delay)

    def _busy_wait(self, inst: ServiceInstance, stop):
        """A synchronous worker spinning while its downstream call is
        outstanding: burn ``sync_busy_wait`` of a core in small quanta
        until ``stop`` triggers."""
        quantum = 1e-3
        frac = self.sync_busy_wait
        while not stop.triggered:
            yield inst.cpu.service(quantum * frac)
            if stop.triggered:
                break
            yield self.env.timeout(quantum * (1.0 - frac))

    def _run_operation(self, op_name: str, user: Optional[int],
                       collect: bool = True):
        op = self.app.operations[op_name]
        entry_service = op.root.service
        degrading = self.degradation is not None
        criticality = op.criticality if degrading else None
        if self.shedder is not None \
                and not self.shedder.try_admit(criticality):
            # Admission control at the front tier: reject in O(1)
            # before the request consumes any cluster resources.
            # With degradation armed the admission is class-aware —
            # sheddable traffic loses headroom first.
            self.resilience_stats["shed"] += 1
            span = self._fast_span(entry_service, op_name, STATUS_SHED, 0)
            if degrading:
                span.annotations["criticality"] = op.criticality
            trace = Trace(operation=op_name, root=span, user=user)
            if collect:
                self.collector.collect(trace)
            return trace
        try:
            ctx = None
            entry_policy = self.policies.get(entry_service,
                                             self.default_policy)
            deadline = None
            propagate = True
            if entry_policy is not None and entry_policy.deadline \
                    is not None:
                deadline = self.env.now + entry_policy.deadline
                propagate = entry_policy.propagate_deadline
            if deadline is not None or degrading:
                # Degradation always needs a context: the criticality
                # class and fidelity score ride it down the tree.
                ctx = RequestContext(deadline=deadline,
                                     propagate=propagate,
                                     criticality=op.criticality)
            root_span = yield from self._dispatch(op.root, None, op_name,
                                                  user, ctx)
            if degrading:
                ann = root_span.annotations
                ann["criticality"] = op.criticality
                ann["fidelity"] = round(ctx.fidelity, 4)
                ann["degraded"] = ctx.degraded
                # Every terminal outcome feeds the brownout signal —
                # success-only sampling is survivor-biased and goes
                # *quiet* during a collapse.  Completions feed the
                # latency window; failures feed the failure fraction
                # (a breaker rejection or deadline kill can finish in
                # near-zero time, so timing it would read as calm).
                # Shed requests return earlier and never reach here.
                if root_span.status in (STATUS_OK, STATUS_DEGRADED):
                    self.degradation.observe_latency(
                        root_span.end - root_span.start)
                else:
                    self.degradation.observe_failure()
            trace = Trace(operation=op_name, root=root_span, user=user)
            if collect:
                self.collector.collect(trace)
            return trace
        finally:
            if self.shedder is not None:
                self.shedder.release()

    def execute(self, op_name: str, user: Optional[int] = None,
                collect: bool = True) -> Process:
        """Launch one end-to-end request; the returned process event's
        value is the finished :class:`~repro.tracing.span.Trace`.

        ``collect=False`` skips the trace collector — used by callers
        that do their own accounting (e.g. hedged requests, where only
        the winning attempt should count)."""
        if op_name not in self.app.operations:
            raise KeyError(f"unknown operation {op_name!r}")
        return self.env.process(self._run_operation(op_name, user,
                                                    collect),
                                name=f"{self.app.name}.{op_name}")
