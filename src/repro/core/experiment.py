"""The experiment harness: run a deployment under load and measure.

This is the public entry point the examples and every benchmark build
on: construct a deployment (or let :func:`simulate` do it), drive it
with an open-loop generator, sample per-tier utilization over time, and
return an :class:`ExperimentResult` with the latency distribution,
throughput, per-service statistics, and time series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Union

import numpy as np

from ..arch.platform import XEON, Platform
from ..cluster.cluster import Cluster
from ..cluster.ratelimit import TokenBucket
from ..services.app import Application
from ..sim.engine import Environment
from ..stats.timeseries import TimeSeries
from ..tracing.collector import TraceCollector
from ..workload.generator import OpenLoopGenerator
from ..workload.patterns import constant
from ..workload.users import UserPopulation
from .deployment import Deployment

__all__ = ["ExperimentResult", "run_experiment", "simulate"]

RateFn = Callable[[float], float]


@dataclass
class ExperimentResult:
    """Everything measured during one experiment run."""

    deployment: Deployment
    generator: OpenLoopGenerator
    collector: TraceCollector
    utilization: Dict[str, TimeSeries]
    duration: float
    warmup: float
    extras: Dict[str, object] = field(default_factory=dict)
    #: The sim-time metrics registry, when the run was instrumented
    #: (``metrics=True`` / a registry passed to :func:`run_experiment`).
    metrics: Optional[object] = None

    # -- latency ---------------------------------------------------------
    def latencies(self) -> np.ndarray:
        """Post-warmup end-to-end latency samples (seconds)."""
        return self.collector.end_to_end.samples(start=self.warmup)

    def tail(self, p: float = 0.99) -> float:
        """Post-warmup end-to-end tail latency."""
        return self.collector.end_to_end.tail(p, start=self.warmup)

    def mean_latency(self) -> float:
        """Post-warmup mean end-to-end latency."""
        return self.collector.end_to_end.mean(start=self.warmup)

    def service_tail(self, service: str, p: float = 0.99) -> float:
        """Post-warmup tail latency of one tier's spans."""
        return self.collector.per_service[service].tail(p, start=self.warmup)

    # -- throughput -------------------------------------------------------
    def throughput(self) -> float:
        """Completed end-to-end requests per second post-warmup.

        Routed through the collector so the estimate is weight-corrected
        when a trace sampler is attached."""
        return self.collector.throughput(
            start=self.warmup, end=self.duration)

    def completion_ratio(self) -> float:
        """Completed / issued — below ~0.95 means the system never
        drained its queues (a saturation signal in its own right)."""
        if self.generator.issued == 0:
            return 0.0
        return self.collector.total_collected / self.generator.issued

    def success_ratio(self) -> float:
        """Successful completions / issued.  With a resilience policy
        in place requests can finish fast-but-failed (timeout, open
        breaker, shed); this is the end-to-end availability number."""
        if self.generator.issued == 0:
            return 0.0
        return self.collector.ok_count / self.generator.issued

    def goodput(self, qos_latency: Optional[float] = None,
                p: float = 0.99,
                min_completion: float = 0.9) -> float:
        """Throughput if QoS holds (and the system keeps up), else 0."""
        bound = qos_latency if qos_latency is not None \
            else self.deployment.app.qos_latency
        if self.completion_ratio() < min_completion:
            return 0.0
        if len(self.latencies()) == 0:
            return 0.0
        if self.tail(p) > bound:
            return 0.0
        return self.throughput()

    def qos_met(self, qos_latency: Optional[float] = None,
                p: float = 0.99) -> bool:
        """True when the post-warmup tail satisfies the QoS bound."""
        return self.goodput(qos_latency, p) > 0.0


def run_experiment(deployment: Deployment,
                   rate: Union[float, RateFn],
                   duration: float,
                   warmup: Optional[float] = None,
                   mix: Optional[Mapping[str, float]] = None,
                   users: Optional[UserPopulation] = None,
                   rate_limiter: Optional[TokenBucket] = None,
                   sample_period: float = 1.0,
                   seed: int = 1,
                   run_env: bool = True,
                   metrics: Union[bool, object, None] = None,
                   ) -> ExperimentResult:
    """Drive ``deployment`` with open-loop load and measure.

    ``rate`` is either a fixed QPS or a pattern function.  The
    environment is run to ``duration`` unless ``run_env=False`` (callers
    who schedule extra processes — autoscalers, fault injectors — can
    run the clock themselves and still get the monitoring plumbing).

    ``metrics`` attaches the observability layer: pass ``True`` for a
    default :class:`~repro.obs.MetricsRegistry` (1 s scrape cadence) or
    a pre-configured registry; the deployment, collector, and generator
    are instrumented and the sim-time scraper started, with the
    registry returned on ``result.metrics``."""
    env = deployment.env
    if warmup is None:
        warmup = 0.2 * duration
    rate_fn: RateFn = rate if callable(rate) else constant(float(rate))
    generator = OpenLoopGenerator(deployment, rate_fn, mix=mix,
                                  users=users, rate_limiter=rate_limiter,
                                  seed=seed)
    # Serverless deployments have no provisioned instances to watch.
    monitorable = hasattr(deployment, "instances_of")
    utilization: Dict[str, TimeSeries] = {
        name: TimeSeries(name) for name in deployment.service_names()
    } if monitorable else {}

    def monitor():
        # Windowed utilization from cumulative busy-time deltas, so this
        # observer never perturbs the autoscaler's own sampling.
        prev_busy: Dict[int, float] = {}
        last_t = env.now
        while True:
            yield env.timeout(sample_period)
            dt = env.now - last_t
            last_t = env.now
            for name, series in utilization.items():
                instances = deployment.instances_of(name)
                delta = 0.0
                cores = 0
                for inst in instances:
                    busy = inst.cpu.busy_time()
                    delta += busy - prev_busy.get(id(inst), 0.0)
                    prev_busy[id(inst)] = busy
                    cores += inst.cores
                series.record(env.now,
                              min(1.0, delta / (dt * cores)) if dt > 0
                              else 0.0)

    if monitorable:
        env.process(monitor(), name="monitor")
    registry = None
    if metrics is not None and metrics is not False:
        from ..obs import MetricsRegistry, instrument_experiment
        registry = MetricsRegistry() if metrics is True else metrics
        if monitorable:
            instrument_experiment(registry, deployment,
                                  generator=generator, env=env)
        else:
            # Serverless-style deployments: no per-tier instances to
            # watch, but request metrics and the scraper still apply.
            from ..obs import instrument_generator
            collector = getattr(deployment, "collector", None)
            if collector is not None \
                    and hasattr(collector, "set_metrics"):
                collector.set_metrics(registry)
            instrument_generator(registry, generator)
            registry.start(env)
    generator.start(duration)
    result = ExperimentResult(
        deployment=deployment, generator=generator,
        collector=deployment.collector, utilization=utilization,
        duration=duration, warmup=warmup, metrics=registry)
    if run_env:
        env.run(until=duration)
    return result


def simulate(app: Application,
             qps: Union[float, RateFn],
             duration: float = 30.0,
             platform: Platform = XEON,
             n_machines: int = 4,
             replicas: Optional[Dict[str, int]] = None,
             cores: Optional[Dict[str, int]] = None,
             seed: int = 0,
             freq_ghz: Optional[float] = None,
             edge_machines: int = 0,
             edge_platform: Optional[Platform] = None,
             policies: Optional[Dict[str, object]] = None,
             default_policy: Optional[object] = None,
             shedder: Optional[object] = None,
             degradation: Optional[object] = None,
             setup: Optional[Callable[[Deployment], None]] = None,
             sampler: Optional[object] = None,
             keep_traces: Optional[int] = None,
             **kwargs) -> ExperimentResult:
    """One-call convenience: build env + cluster + deployment and run.

    ``policies``/``default_policy``/``shedder`` pass resilience
    configuration (:mod:`repro.resilience`) through to the deployment,
    and ``degradation`` (a :class:`~repro.resilience.DegradationManager`)
    arms graceful degradation on top of it.
    ``setup`` runs against the fresh deployment before load starts —
    the hook for fault injection (``slow_down_service``, ``delay_
    service``, ...) and for scheduling mid-run events on its env.

    ``sampler`` (a :class:`~repro.tracing.sampling.TraceSampler`) and
    ``keep_traces`` configure the deployment's trace collector:
    deterministic head sampling of span storage/recorders/metric
    histograms, and the ring-buffer cap on stored traces."""
    env = Environment()
    cluster = Cluster.homogeneous(env, platform, n_machines)
    if edge_machines > 0:
        from ..arch.platform import DRONE_SOC
        edge = Cluster.homogeneous(env, edge_platform or DRONE_SOC,
                                   edge_machines, zone="edge",
                                   name_prefix="drone")
        cluster = cluster.merge(edge)
    if freq_ghz is not None:
        cluster.set_frequency(freq_ghz)
    collector = None
    if sampler is not None or keep_traces is not None:
        collector = TraceCollector(sampler=sampler) if keep_traces is None \
            else TraceCollector(keep_traces=keep_traces, sampler=sampler)
    deployment = Deployment(env, app, cluster, replicas=replicas,
                            cores=cores, seed=seed, policies=policies,
                            default_policy=default_policy,
                            shedder=shedder, collector=collector,
                            degradation=degradation)
    if setup is not None:
        setup(deployment)
    return run_experiment(deployment, qps, duration, seed=seed + 1,
                          **kwargs)
