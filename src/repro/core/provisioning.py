"""Balanced provisioning (Sec. 3.8).

The paper provisions each end-to-end service so that "no single
microservice introduces early bottlenecks": starting from a fair
allocation, saturated tiers are upsized until all tiers saturate at
about the same load.  The fixed point of that iteration is the
allocation where every tier has just enough servers to sit at a common
utilization at the target load — which we can compute directly from the
per-service demand:

    servers_s = ceil(lambda_s * S_s / target_util)

:func:`balanced_provision` returns per-service replica counts;
:func:`provision_iteratively` reproduces the paper's upsize loop against
the analytic model (useful to show both land in the same place).
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional

from ..arch.platform import XEON, Platform
from ..services.app import Application
from ..analytic.model import AnalyticModel

__all__ = ["balanced_provision", "provision_iteratively"]


def balanced_provision(app: Application, target_qps: float,
                       target_util: float = 0.6,
                       cores_per_replica: int = 2,
                       platform: Platform = XEON,
                       mix: Optional[Mapping[str, float]] = None
                       ) -> Dict[str, int]:
    """Replica counts so every tier runs at ``target_util`` at the
    target load."""
    if target_qps <= 0:
        raise ValueError("target_qps must be > 0")
    if not 0 < target_util < 1:
        raise ValueError("target_util must be in (0,1)")
    if cores_per_replica < 1:
        raise ValueError("cores_per_replica must be >= 1")
    model = AnalyticModel(app, replicas=1, cores=cores_per_replica,
                          platform=platform, mix=mix)
    replicas: Dict[str, int] = {}
    for service, demand in model.demands.items():
        arrival = target_qps * demand.visits
        per_visit = model.service_time(service)
        servers = math.ceil(arrival * per_visit / target_util) \
            if arrival * per_visit > 0 else 1
        replicas[service] = max(1, math.ceil(servers / cores_per_replica))
    return replicas


def provision_iteratively(app: Application, target_qps: float,
                          target_util: float = 0.6,
                          cores_per_replica: int = 2,
                          platform: Platform = XEON,
                          mix: Optional[Mapping[str, float]] = None,
                          max_rounds: int = 1000) -> Dict[str, int]:
    """The paper's loop: start fair, upsize the most saturated tier
    until no tier exceeds the utilization target at ``target_qps``."""
    replicas = {service: 1 for service in app.services}
    for _ in range(max_rounds):
        model = AnalyticModel(app, replicas=replicas,
                              cores=cores_per_replica, platform=platform,
                              mix=mix)
        utils = model.utilizations(target_qps)
        worst = max(utils, key=utils.get)
        if utils[worst] <= target_util:
            return replicas
        replicas[worst] += 1
    raise RuntimeError("provisioning did not converge; raise max_rounds")
