"""EC2 container-deployment cost model (the Fig. 21 comparator).

The paper runs each service on 20-64 dedicated m5.12xlarge instances
and compares against Lambda.  Cost is provisioned instance-hours —
whether or not the instances are busy — which is exactly why the
serverless bill comes out ~10x lower for bursty load.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..stats.timeseries import StepSeries

__all__ = ["Ec2CostModel"]


@dataclass(frozen=True)
class Ec2CostModel:
    """Hourly billing for a fleet of identical instances."""

    hourly_usd: float = 2.304  # m5.12xlarge on-demand

    def cost_fixed(self, instances: int, duration_s: float) -> float:
        """Bill for a fixed fleet over ``duration_s`` seconds."""
        if instances < 0 or duration_s < 0:
            raise ValueError("instances and duration must be >= 0")
        return instances * self.hourly_usd * duration_s / 3600.0

    def cost_autoscaled(self, instance_series: StepSeries,
                        start: float, end: float,
                        extra_fixed: int = 0) -> float:
        """Bill for an autoscaled fleet from its instance-count series."""
        instance_seconds = instance_series.integral(start, end)
        fixed = extra_fixed * (end - start)
        return (instance_seconds + fixed) * self.hourly_usd / 3600.0
