"""Serverless substrate: Lambda functions and EC2 cost comparison."""

from .ec2_model import Ec2CostModel
from .lambda_model import LambdaConfig, LambdaDeployment, LambdaUsage

__all__ = ["Ec2CostModel", "LambdaConfig", "LambdaDeployment",
           "LambdaUsage"]
