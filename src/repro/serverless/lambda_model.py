"""AWS-Lambda-style serverless deployment model (Sec. 7, Fig. 21).

Each call-tree node becomes a *function invocation* instead of an RPC to
a provisioned replica.  The model captures the four effects the paper
identifies:

* **State indirection** — functions are ephemeral, so state between
  dependent functions passes through persistent storage.  With S3 this
  costs tens of milliseconds per hop plus rate limiting; with remote
  memory (the paper's four extra EC2 instances) ~1 ms.
* **Cold starts** — an invocation exceeding the warm-container pool
  pays container-start latency; the pool grows on demand and decays
  when idle.
* **Placement jitter** — functions land anywhere in the datacenter and
  share machines with external tenants, so compute time carries much
  higher variance than dedicated instances.
* **Per-request billing** — cost scales with invocations and GB-seconds
  rather than provisioned instance-hours, which is why Lambda lands
  almost an order of magnitude cheaper in Fig. 21 despite being slower.

No CPU queueing is modeled: the provider's fleet is effectively
infinite, which is precisely serverless's elasticity advantage in the
diurnal experiment (Fig. 21 bottom).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from ..net.fabric import DEFAULT_ZONE_LATENCY
from ..services.app import Application
from ..services.calltree import CallNode
from ..sim.engine import Environment, Process
from ..sim.resources import Resource
from ..sim.rng import RandomStreams
from ..tracing.collector import TraceCollector
from ..tracing.span import Span, Trace

__all__ = ["LambdaConfig", "LambdaDeployment", "LambdaUsage"]


@dataclass(frozen=True)
class LambdaConfig:
    """Knobs of the serverless platform."""

    #: 's3' (default persistent storage) or 'memory' (remote-memory
    #: state passing through dedicated instances).
    state_backend: str = "s3"
    memory_gb: float = 1.0
    cold_start_s: float = 0.18
    invoke_overhead_s: float = 0.003
    #: S3 object put/get latency and aggregate op concurrency.
    s3_put_s: float = 0.022
    s3_get_s: float = 0.014
    s3_concurrency: int = 64
    #: Remote-memory state-passing latency per hop.
    memory_state_s: float = 0.0012
    #: Compute-speed factor vs. the nominal Xeon core.
    compute_speed: float = 0.9
    #: Placement/interference jitter (CV of a lognormal multiplier).
    jitter_cv: float = 0.35
    #: Warm-pool decay time constant (idle containers reclaimed).
    warm_expiry_s: float = 120.0
    #: Billing.
    price_per_million_requests: float = 0.20
    price_per_gb_s: float = 0.0000166667
    s3_price_per_1k_put: float = 0.005
    s3_price_per_1k_get: float = 0.0004

    def __post_init__(self):
        if self.state_backend not in ("s3", "memory"):
            raise ValueError("state_backend must be 's3' or 'memory'")
        if self.memory_gb <= 0 or self.compute_speed <= 0:
            raise ValueError("memory_gb and compute_speed must be > 0")


@dataclass
class _FunctionPool:
    """Warm-container accounting for one function."""

    warm: int = 0
    in_flight: int = 0
    last_decay: float = 0.0


@dataclass
class LambdaUsage:
    """Accumulated billable usage."""

    invocations: int = 0
    gb_seconds: float = 0.0
    s3_puts: int = 0
    s3_gets: int = 0
    cold_starts: int = 0
    state_hops: int = 0
    extra_hourly_usd: float = 0.0  # e.g. the remote-memory instances

    def cost_usd(self, config: LambdaConfig, duration_s: float) -> float:
        """Total bill for a run of ``duration_s`` seconds."""
        return (self.invocations / 1e6 * config.price_per_million_requests
                + self.gb_seconds * config.price_per_gb_s
                + self.s3_puts / 1e3 * config.s3_price_per_1k_put
                + self.s3_gets / 1e3 * config.s3_price_per_1k_get
                + self.extra_hourly_usd * duration_s / 3600.0)


class LambdaDeployment:
    """An application executed as serverless functions.

    Mirrors :class:`repro.core.deployment.Deployment`'s ``execute`` API
    so the same workload generators and collectors drive it."""

    #: Hourly price of one remote-memory state instance (m5.12xlarge
    #: class); the paper uses four of them for the Lambda(mem) config.
    REMOTE_MEMORY_INSTANCES = 4
    REMOTE_MEMORY_HOURLY_USD = 2.304

    def __init__(self, env: Environment, app: Application,
                 config: Optional[LambdaConfig] = None,
                 seed: int = 0,
                 collector: Optional[TraceCollector] = None):
        self.env = env
        self.app = app
        self.config = config or LambdaConfig()
        self.rng = RandomStreams(seed)
        self.collector = collector or TraceCollector()
        self.usage = LambdaUsage()
        if self.config.state_backend == "memory":
            self.usage.extra_hourly_usd = (self.REMOTE_MEMORY_INSTANCES
                                           * self.REMOTE_MEMORY_HOURLY_USD)
        self._pools: Dict[str, _FunctionPool] = {}
        self._s3 = Resource(env, capacity=self.config.s3_concurrency)

    # -- compatibility shims so monitors can be shared -----------------
    def service_names(self):
        """Function names (one function per service)."""
        return list(self.app.services.keys())

    # -- warm pool ---------------------------------------------------------
    def _pool(self, service: str) -> _FunctionPool:
        pool = self._pools.get(service)
        if pool is None:
            pool = _FunctionPool(last_decay=self.env.now)
            self._pools[service] = pool
        return pool

    def _decay_pool(self, pool: _FunctionPool) -> None:
        """Exponentially reclaim idle warm containers."""
        now = self.env.now
        elapsed = now - pool.last_decay
        if elapsed <= 0:
            return
        keep = math.exp(-elapsed / self.config.warm_expiry_s)
        idle = max(0, pool.warm - pool.in_flight)
        pool.warm = pool.in_flight + int(round(idle * keep))
        pool.last_decay = now

    def _acquire_container(self, service: str) -> bool:
        """Returns True on a warm hit, False when a cold start is due."""
        pool = self._pool(service)
        self._decay_pool(pool)
        pool.in_flight += 1
        if pool.in_flight <= pool.warm:
            return True
        pool.warm = pool.in_flight
        self.usage.cold_starts += 1
        return False

    def _release_container(self, service: str) -> None:
        self._pool(service).in_flight -= 1

    # -- state passing ------------------------------------------------------
    def _state_hop(self, span: Span):
        """Persist this function's output for its successor."""
        self.usage.state_hops += 1
        if self.config.state_backend == "s3":
            self.usage.s3_puts += 1
            self.usage.s3_gets += 1
            with self._s3.request() as req:
                t0 = self.env.now
                yield req
                put = self.rng.lognormal("lambda.s3", self.config.s3_put_s,
                                         0.4)
                get = self.rng.lognormal("lambda.s3", self.config.s3_get_s,
                                         0.4)
                yield self.env.timeout(put + get)
                span.net_time += self.env.now - t0
        else:
            t0 = self.env.now
            delay = self.rng.lognormal("lambda.mem",
                                       self.config.memory_state_s, 0.3)
            yield self.env.timeout(delay)
            span.net_time += self.env.now - t0

    # -- execution ---------------------------------------------------------
    def _zone_hop(self, parent_zone: str, zone: str) -> float:
        """One-way latency when an invocation crosses zones.

        Edge-pinned tiers (drone sensors/controllers) stay on their
        devices even under a serverless backend — the wifi round trip
        to cloud-hosted functions is not optional."""
        if parent_zone == zone:
            return 0.0
        return DEFAULT_ZONE_LATENCY.get((parent_zone, zone), 100e-6)

    def _run_node(self, node: CallNode, operation: str,
                  user: Optional[int], depth: int,
                  parent_zone: str = "client"):
        service = node.service
        definition = self.app.services[service]
        zone = self.app.zone_of(service)
        span = Span(service=service, operation=operation,
                    start=self.env.now)
        hop = self._zone_hop(parent_zone, zone)
        if hop > 0:
            yield self.env.timeout(hop)
            span.net_time += hop
        warm = self._acquire_container(service)
        try:
            self.usage.invocations += 1
            if not warm:
                yield self.env.timeout(self.rng.lognormal(
                    "lambda.cold", self.config.cold_start_s, 0.3))
            yield self.env.timeout(self.config.invoke_overhead_s)

            work = (definition.work_mean * node.work_scale
                    / self.config.compute_speed)
            if work > 0:
                work = self.rng.lognormal(f"lambda.work.{service}", work,
                                          definition.work_cv)
                jitter = self.rng.lognormal("lambda.jitter", 1.0,
                                            self.config.jitter_cv)
                t0 = self.env.now
                yield self.env.timeout(work * jitter)
                span.app_time += self.env.now - t0

            for group in node.groups:
                # State must be externalized before dependents read it.
                yield from self._state_hop(span)
                if len(group) == 1:
                    child = yield from self._run_node(group[0], operation,
                                                      user, depth + 1,
                                                      zone)
                    span.children.append(child)
                else:
                    procs = [self.env.process(
                        self._run_node(child, operation, user, depth + 1,
                                       zone))
                        for child in group]
                    results = yield self.env.all_of(procs)
                    span.children.extend(results[i]
                                         for i in range(len(procs)))
            if hop > 0:
                # The response crosses back.
                yield self.env.timeout(hop)
                span.net_time += hop
        finally:
            self._release_container(service)
        span.end = self.env.now
        # Chained (step-function-style) invocation: each function bills
        # its own lifetime, not the downstream functions it triggered —
        # but it does pay for its own S3 waits and cold start.
        self.usage.gb_seconds += self.config.memory_gb * span.exclusive_time()
        return span

    def _run_operation(self, op_name: str, user: Optional[int]):
        op = self.app.operations[op_name]
        root = yield from self._run_node(op.root, op_name, user, 0)
        trace = Trace(operation=op_name, root=root, user=user)
        self.collector.collect(trace)
        return trace

    def execute(self, op_name: str,
                user: Optional[int] = None) -> Process:
        """Launch one end-to-end request through the function graph."""
        if op_name not in self.app.operations:
            raise KeyError(f"unknown operation {op_name!r}")
        return self.env.process(self._run_operation(op_name, user),
                                name=f"lambda.{op_name}")

    def cost_usd(self, duration_s: float) -> float:
        """The bill for a run of ``duration_s`` seconds."""
        return self.usage.cost_usd(self.config, duration_s)
