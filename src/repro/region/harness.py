"""The multi-region experiment harness: topology in, global scorecard out.

``run_region_scenario`` builds one simulation universe containing a
:class:`MultiRegionDeployment`, async replication, and the geo front
door; arms a (validated) fault schedule; drives one open-loop workload
per user population — each region's diurnal curve shifted by its
timezone — and grades the outcome into a :class:`GlobalScorecard`:
the single-cluster resilience scorecard extended with

* **global blast radius** — attributed tier-seconds *per region*, so a
  region outage shows damage concentrated in one region while a bad
  config shows it everywhere;
* **cross-region MTTR** — first injection until the front door's last
  routing restoration: how long the *global* routing plane took to
  converge back, a different clock from any one region's QoS episodes;
* **stale reads** — failed-over requests that observed replication lag
  beyond the bound, the consistency bill for the availability win.

The common-random-numbers discipline carries over: a ``sticky`` run and
a ``failover`` run with the same seed differ only in routing decisions,
which is what makes the ablation's goodput ratio meaningful.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..chaos.faults import Fault
from ..chaos.schedule import ChaosLog, FaultSchedule
from ..chaos.scorecard import (Scorecard, SteadyStateHypothesis,
                               build_scorecard)
from ..services.app import Application
from ..stats.tables import format_table
from ..stats.timeseries import TimeSeries
from ..workload.generator import OpenLoopGenerator
from ..workload.patterns import RateFn, constant, scaled, shifted
from .deployment import MultiRegionDeployment
from .frontdoor import FrontDoor, FrontDoorConfig
from .replication import ReplicationManager
from .topology import RegionTopology, two_region_topology

__all__ = ["RegionResult", "GlobalScorecard", "RegionRun",
           "run_region_scenario"]


@dataclass
class RegionResult:
    """An :class:`~repro.core.experiment.ExperimentResult`-shaped view
    of one region (or of the whole globe through the front door's
    collector) — the duck type the scorecard/attribution layer reads."""

    deployment: object
    collector: object
    utilization: Dict[str, TimeSeries]
    duration: float
    warmup: float
    metrics: object = None


@dataclass
class GlobalScorecard(Scorecard):
    """A resilience scorecard graded at planetary scope."""

    #: Routing mode the run used (``failover`` or ``sticky``).
    mode: str = "failover"
    #: Attributed blast radius per region (tier-seconds).
    region_blast: Dict[str, float] = field(default_factory=dict)
    #: First injection until the front door's last routing restoration
    #: (None when routing never converged back — or never moved).
    cross_region_mttr: Optional[float] = None
    #: Front-door ejections (populations losing a region).
    frontdoor_ejections: int = 0
    #: Front-door restorations (re-homing after recovery).
    frontdoor_restorations: int = 0
    #: Failed-over reads beyond the staleness bound.
    stale_reads: int = 0
    stale_reads_by_region: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        data = super().to_dict()
        data.update({
            "mode": self.mode,
            "region_blast_tier_seconds": dict(self.region_blast),
            "cross_region_mttr": self.cross_region_mttr,
            "frontdoor_ejections": self.frontdoor_ejections,
            "frontdoor_restorations": self.frontdoor_restorations,
            "stale_reads": self.stale_reads,
            "stale_reads_by_region": dict(self.stale_reads_by_region),
        })
        return data

    def render(self) -> str:
        cross = "-" if self.cross_region_mttr is None \
            else f"{self.cross_region_mttr:.2f}s"
        blast = ", ".join(
            f"{region}={self.region_blast[region]:.1f}"
            for region in sorted(self.region_blast)) or "none"
        stale = ", ".join(
            f"{region}={count}"
            for region, count in sorted(
                self.stale_reads_by_region.items()) if count) or "none"
        rows = [
            ["routing mode", self.mode],
            ["cross-region MTTR", cross],
            ["front-door ejections",
             str(self.frontdoor_ejections)],
            ["front-door restorations",
             str(self.frontdoor_restorations)],
            ["blast by region (tier-s)", blast],
            ["stale reads", f"{self.stale_reads} ({stale})"],
        ]
        return super().render() + "\n" + format_table(
            ["metric", "value"], rows,
            title="global extension")


@dataclass
class RegionRun:
    """Everything one multi-region scenario run produced."""

    scenario: str
    deployment: MultiRegionDeployment
    topology: RegionTopology
    frontdoor: FrontDoor
    replication: ReplicationManager
    schedule: FaultSchedule
    log: ChaosLog
    scorecard: GlobalScorecard
    region_cards: Dict[str, Scorecard]
    result: RegionResult
    region_results: Dict[str, RegionResult]
    generators: Dict[str, OpenLoopGenerator]
    seed: int
    duration: float
    warmup: float

    def post_fault_goodput(self,
                           qos_latency: Optional[float] = None) -> float:
        """Within-QoS completions per second from the first injection to
        the end of the run (whole post-warmup window when fault-free) —
        the ablation's headline number."""
        qos = qos_latency if qos_latency is not None \
            else self.deployment.app.qos_latency
        first = self.log.first_injection()
        start = first if first is not None else self.warmup
        if self.duration <= start:
            return 0.0
        samples = self.frontdoor.collector.end_to_end.samples(
            start=start, end=self.duration)
        return sum(1 for s in samples if s <= qos) \
            / (self.duration - start)


def _resolve_schedule(faults, deployment: MultiRegionDeployment,
                      duration: float) -> FaultSchedule:
    if faults is None:
        return FaultSchedule()
    if isinstance(faults, FaultSchedule):
        return faults
    if callable(faults):
        return faults(deployment, duration)
    return FaultSchedule(list(faults))


def _utilization_monitor(env, deployment, utilization: Dict[str,
                                                            TimeSeries],
                         sample_period: float):
    """Per-region copy of the experiment harness's windowed-utilization
    observer (cumulative busy-time deltas; never perturbs anything)."""
    prev_busy: Dict[int, float] = {}
    last_t = env.now
    while True:
        yield env.timeout(sample_period)
        dt = env.now - last_t
        last_t = env.now
        for name, series in utilization.items():
            delta = 0.0
            cores = 0
            for inst in deployment.instances_of(name):
                busy = inst.cpu.busy_time()
                delta += busy - prev_busy.get(id(inst), 0.0)
                prev_busy[id(inst)] = busy
                cores += inst.cores
            series.record(env.now,
                          min(1.0, delta / (dt * cores))
                          if dt > 0 and cores > 0 else 0.0)


def run_region_scenario(app: Union[Application, str],
                        faults: Union[FaultSchedule, Callable,
                                      Sequence[Fault], None] = None,
                        *,
                        topology: Optional[RegionTopology] = None,
                        qps: float = 60.0,
                        duration: float = 30.0,
                        warmup: Optional[float] = None,
                        mode: str = "failover",
                        seed: int = 0,
                        replicas: Optional[Dict[str, int]] = None,
                        cores: Optional[Dict[str, int]] = None,
                        policies: Optional[dict] = None,
                        default_policy=None,
                        frontdoor_config: Optional[FrontDoorConfig]
                        = None,
                        replication_interval: float = 0.25,
                        staleness_bound: float = 1.0,
                        pattern: Optional[RateFn] = None,
                        hypothesis: Optional[SteadyStateHypothesis]
                        = None,
                        metrics: Union[bool, object] = True,
                        sample_period: float = 1.0,
                        scenario: str = "region",
                        validate: bool = True) -> RegionRun:
    """Run one multi-region scenario and grade it globally.

    ``faults`` may be a :class:`FaultSchedule`, a list of faults, a
    builder ``(deployment, duration) -> FaultSchedule``, or None for
    the no-fault baseline.  ``qps`` is the *global* arrival rate; each
    population gets its normalized ``population_share`` of it, and
    ``pattern`` (a rate function of time, e.g. a diurnal curve summing
    to ``qps``-scale) is shifted per region by its ``time_offset``."""
    from ..chaos.harness import _resolve_app
    from ..sim.engine import Environment

    application = _resolve_app(app)
    topology = topology or two_region_topology()
    if warmup is None:
        warmup = 0.2 * duration
    env = Environment()
    deployment = MultiRegionDeployment(
        env, application, topology, replicas=replicas, cores=cores,
        seed=seed, policies=policies, default_policy=default_policy)
    replication = ReplicationManager(
        deployment, interval=replication_interval,
        staleness_bound=staleness_bound).start()
    config = frontdoor_config or FrontDoorConfig(mode=mode)
    frontdoor = FrontDoor(deployment, replication=replication,
                          config=config).start()
    schedule = _resolve_schedule(faults, deployment, duration)
    log = schedule.arm(deployment, validate=validate)

    registry = None
    if metrics is not None and metrics is not False:
        from ..obs import MetricsRegistry, instrument_frontdoor
        registry = MetricsRegistry() if metrics is True else metrics
        frontdoor.collector.set_metrics(registry)
        instrument_frontdoor(registry, frontdoor)
        registry.start(env)

    names = deployment.region_names
    shares = {name: topology.spec(name).population_share
              for name in names}
    total_share = sum(shares.values())
    if total_share <= 0:
        raise ValueError("population shares sum to zero")
    base_rate = pattern if pattern is not None else constant(float(qps))
    generators: Dict[str, OpenLoopGenerator] = {}
    for idx, name in enumerate(names):
        share = shares[name] / total_share
        if share <= 0:
            continue
        spec = topology.spec(name)
        rate_fn = shifted(scaled(base_rate, share), spec.time_offset)
        gen = OpenLoopGenerator(frontdoor.client(name), rate_fn,
                                seed=seed + 10 * (idx + 1))
        gen.start(duration)
        generators[name] = gen

    utilization: Dict[str, Dict[str, TimeSeries]] = {}
    for name in names:
        regional = deployment.region(name)
        utilization[name] = {
            service: TimeSeries(f"{name}:{service}")
            for service in regional.service_names()}
        env.process(
            _utilization_monitor(env, regional, utilization[name],
                                 sample_period),
            name=f"monitor:{name}")

    env.run(until=duration)

    region_results = {
        name: RegionResult(
            deployment=deployment.region(name),
            collector=deployment.region(name).collector,
            utilization=utilization[name],
            duration=duration, warmup=warmup)
        for name in names}
    global_result = RegionResult(
        deployment=deployment, collector=frontdoor.collector,
        utilization={}, duration=duration, warmup=warmup,
        metrics=registry)

    region_cards = {
        name: build_scorecard(region_results[name], log,
                              scenario=f"{scenario}:{name}",
                              hypothesis=hypothesis, seed=seed)
        for name in names}
    base = build_scorecard(global_result, log, scenario=scenario,
                           hypothesis=hypothesis, seed=seed)
    card = GlobalScorecard(**{
        f.name: getattr(base, f.name)
        for f in dataclasses.fields(Scorecard)})
    card.mode = config.mode
    card.region_blast = {
        name: region_cards[name].blast_radius for name in names}
    card.stale_reads = replication.stale_reads
    card.stale_reads_by_region = {
        name: count
        for name, count in replication.stale_reads_by_region.items()
        if count}
    card.frontdoor_ejections = sum(
        1 for e in frontdoor.events if e.kind == "ejected")
    card.frontdoor_restorations = sum(
        1 for e in frontdoor.events if e.kind == "restored")
    first = log.first_injection()
    if first is not None:
        ejected = [e.time for e in frontdoor.events
                   if e.kind == "ejected" and e.time >= first]
        if ejected and card.detection_time is None:
            # The routing plane noticing is the global detection clock.
            card.detection_time = min(ejected) - first
        restored = [e.time for e in frontdoor.events
                    if e.kind == "restored" and e.time >= first]
        if restored:
            card.cross_region_mttr = max(restored) - first

    return RegionRun(
        scenario=scenario, deployment=deployment, topology=topology,
        frontdoor=frontdoor, replication=replication,
        schedule=schedule, log=log, scorecard=card,
        region_cards=region_cards, result=global_result,
        region_results=region_results, generators=generators,
        seed=seed, duration=duration, warmup=warmup)
