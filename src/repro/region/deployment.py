"""One application deployed across several regions.

:class:`MultiRegionDeployment` builds a full per-region
:class:`~repro.core.deployment.Deployment` (its own cluster, intra-region
fabric, trace collector, and derived RNG seed) for every region in a
:class:`~repro.region.topology.RegionTopology`, and wires them through
the cross-region fabric built from the topology's RTT/loss matrix.

It is deliberately duck-type compatible with the single-cluster
``Deployment`` where the chaos and validation layers need it —
``env`` / ``app`` / ``cluster`` (merged) / ``fabric`` (the *cross-region*
fabric) / ``rng`` / ``service_names`` / ``instances_of`` — so
``FaultSchedule.arm`` and the FAULT validators run unchanged.
Machine-scale faults target a single region's sub-deployment
(``deployment.region(name)``); region-scale faults
(:class:`~repro.region.RegionOutage`,
:class:`~repro.region.InterRegionPartition`) target this object.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..arch.platform import XEON
from ..cluster.cluster import Cluster
from ..core.deployment import Deployment
from ..sim.engine import Environment
from ..sim.rng import RandomStreams
from .topology import RegionTopology

__all__ = ["MultiRegionDeployment"]


class MultiRegionDeployment:
    """Per-region deployments behind one cross-region fabric."""

    def __init__(self, env: Environment, app, topology: RegionTopology,
                 replicas: Optional[Dict[str, int]] = None,
                 cores: Optional[Dict[str, int]] = None,
                 seed: int = 0,
                 policies: Optional[dict] = None,
                 default_policy=None):
        self.env = env
        self.app = app
        self.topology = topology
        self.seed = seed
        self.rng = RandomStreams(seed)
        self.fabric = topology.build_fabric(env, self.rng)
        self._regions: Dict[str, Deployment] = {}
        # The app may constrain its footprint; the runtime counterpart
        # of lint's TOPO006/FAULT004 checks.
        declared = list(getattr(app, "regions", ()) or ())
        if declared:
            missing = [r for r in declared if r not in topology.names]
            if missing:
                raise ValueError(
                    f"app {app.name!r} declares region(s) "
                    f"{missing} absent from the topology "
                    f"({', '.join(topology.names)})")
        for pinned, region in (getattr(app, "service_regions", {})
                               or {}).items():
            if region not in topology.names:
                raise ValueError(
                    f"service {pinned!r} is pinned to region "
                    f"{region!r}, not in the topology "
                    f"({', '.join(topology.names)})")
        merged: Optional[Cluster] = None
        for idx, spec in enumerate(topology.regions):
            cluster = Cluster.homogeneous(
                env, spec.platform or XEON, spec.machines,
                name_prefix=f"{spec.name}-m")
            # Derived seeds keep per-region RNG streams independent and
            # replayable from the one top-level seed.
            self._regions[spec.name] = Deployment(
                env, app, cluster, replicas=replicas, cores=cores,
                seed=seed + 1000 * (idx + 1), policies=policies,
                default_policy=default_policy)
            merged = cluster if merged is None else merged.merge(cluster)
        self.cluster = merged

    # -- region access -----------------------------------------------------
    @property
    def region_names(self) -> List[str]:
        """Region names in topology order (FAULT004's vocabulary)."""
        return self.topology.names

    def region(self, name: str) -> Deployment:
        """One region's sub-deployment (machine-scale fault target)."""
        try:
            return self._regions[name]
        except KeyError:
            raise ValueError(
                f"unknown region {name!r} (have: "
                f"{', '.join(self.region_names)})") from None

    def region_of_machine(self, machine_id: str) -> Optional[str]:
        """Which region hosts a machine id, or None."""
        for name, dep in self._regions.items():
            if any(m.machine_id == machine_id
                   for m in dep.cluster.machines):
                return name
        return None

    # -- Deployment-compatible surface ------------------------------------
    def service_names(self) -> List[str]:
        return self._regions[self.region_names[0]].service_names()

    def instances_of(self, service: str) -> list:
        """All replicas of a service, concatenated in region order."""
        out = []
        for name in self.region_names:
            out.extend(self._regions[name].instances_of(service))
        return out

    @property
    def work_multiplier(self):
        """Region-0 view; mutate via :meth:`slow_down_service`, which
        fans out and keeps all regions uniform."""
        return self._regions[self.region_names[0]].work_multiplier

    @property
    def extra_delay(self):
        return self._regions[self.region_names[0]].extra_delay

    def slow_down_service(self, service: str, factor: float) -> None:
        for name in self.region_names:
            self._regions[name].slow_down_service(service, factor)

    def delay_service(self, service: str, seconds: float) -> None:
        for name in self.region_names:
            self._regions[name].delay_service(service, seconds)

    def cache_model_of(self, service: str):
        return self._regions[self.region_names[0]].cache_model_of(service)

    def set_cache_hit_ratio(self, service: str, ratio: float,
                            penalty: float) -> None:
        for name in self.region_names:
            self._regions[name].set_cache_hit_ratio(service, ratio,
                                                    penalty)

    def breakers(self) -> dict:
        """All breakers across regions, keyed by edge (regions share
        edge keys; attribution queries by label, so the merge is
        lossless for its purposes)."""
        merged: dict = {}
        for name in self.region_names:
            merged.update(self._regions[name].breakers())
        return merged

    def load_balancer(self, service: str):
        raise NotImplementedError(
            "no global load balancer: target one region's "
            "sub-deployment via deployment.region(name), or route "
            "through the FrontDoor")
