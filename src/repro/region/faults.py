"""Region-scale chaos: whole-region outages and long-haul partitions.

Both faults ride the existing :class:`~repro.chaos.schedule.FaultSchedule`
machinery unchanged — deterministic start/duration windows, the chaos
log, scorecards.  What changes is the blast radius:

* :class:`RegionOutage` generalizes :class:`~repro.chaos.ZoneOutage`
  from a placement zone to an entire region's cluster, reusing the
  :class:`~repro.chaos.CorrelatedCrash` group-crash machinery (and its
  repair semantics: per-replica speed-factor restore and rate re-bake
  for replicas provisioned mid-outage).
* :class:`InterRegionPartition` cuts one long-haul link of the
  *cross-region* fabric, whose "zones" are region names — front-door
  legs, health probes, and replication batches all stall on the cut,
  so a partition shows up as failover on one side and growing
  replication lag on the other.

Validation vocabulary: both faults report the regions they touch via
``FaultTargets.regions``; ``repro lint`` (FAULT004) rejects schedules
that name a region the deployment does not define, or that aim a
region-scale fault at a deployment that is not region-aware at all.
"""

from __future__ import annotations

from typing import List, Optional

from ..chaos.faults import (ChaosContext, CorrelatedCrash, FaultTargets,
                            NetworkPartition)
from ..cluster.machine import Machine

__all__ = ["RegionOutage", "InterRegionPartition"]


class RegionOutage(CorrelatedCrash):
    """Every machine in one region goes down together.

    The region-scale generalization of
    :class:`~repro.chaos.ZoneOutage`: member machines resolve from the
    named region's cluster inside a
    :class:`~repro.region.MultiRegionDeployment`, and injection runs
    against that region's sub-deployment so repair (speed-factor
    restore, rate re-bake) sees the right instance registry."""

    kind = "region_outage"

    def __init__(self, region: str, start: float = 0.0,
                 duration: Optional[float] = None,
                 cold_cache: bool = True,
                 cache_cold_ratio: float = 0.0,
                 cache_warmup: float = 5.0,
                 name: Optional[str] = None):
        self.region = region
        # The member list resolves lazily against the region's cluster.
        super().__init__(machines=["<region>"], start=start,
                         duration=duration, cold_cache=cold_cache,
                         cache_cold_ratio=cache_cold_ratio,
                         cache_warmup=cache_warmup,
                         name=name or f"{self.kind}:{region}")

    def _sub_ctx(self, ctx: ChaosContext) -> ChaosContext:
        """The chaos context of the one region this fault hits."""
        return ChaosContext(ctx.deployment.region(self.region))

    def _members(self, ctx: ChaosContext) -> List[Machine]:
        # Called with the region sub-context: the whole cluster is
        # the member list.
        return list(ctx.cluster.machines)

    def targets(self, ctx: ChaosContext) -> FaultTargets:
        known = getattr(ctx.deployment, "region_names", None)
        if known is None or self.region not in known:
            # Graceful: report the (dangling) region instead of
            # raising, so validation can attribute it to FAULT004.
            return FaultTargets(regions=[self.region])
        targets = super().targets(self._sub_ctx(ctx))
        targets.regions = [self.region]
        return targets

    def _inject(self, ctx: ChaosContext) -> None:
        super()._inject(self._sub_ctx(ctx))

    def _revert(self, ctx: ChaosContext) -> None:
        super()._revert(self._sub_ctx(ctx))


class InterRegionPartition(NetworkPartition):
    """One long-haul link between two regions goes dark.

    Cuts the cross-region fabric (whose zones are region names): user
    traffic routed across it, front-door health probes, and
    replication batches all queue on the cut and flush at heal.
    Neither region's cluster is touched — this is the
    "both-sides-healthy, nobody-can-tell" failure mode."""

    kind = "inter_region_partition"

    def __init__(self, region_a: str, region_b: str,
                 start: float = 0.0,
                 duration: Optional[float] = None,
                 bidirectional: bool = True,
                 name: Optional[str] = None):
        if region_a == region_b:
            raise ValueError("a partition needs two distinct regions")
        # Stored as zone_a/zone_b: the inherited inject/revert then
        # partition/heal the cross-region fabric directly.
        super().__init__(zone_a=region_a, zone_b=region_b, start=start,
                         duration=duration, bidirectional=bidirectional,
                         name=name or f"{self.kind}:"
                                      f"{region_a}|{region_b}")

    @property
    def region_a(self) -> str:
        return self.zone_a

    @property
    def region_b(self) -> str:
        return self.zone_b

    def targets(self, ctx: ChaosContext) -> FaultTargets:
        return FaultTargets(regions=sorted({self.zone_a, self.zone_b}))
