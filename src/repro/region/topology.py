"""Region topology: named regions and the inter-region RTT/loss matrix.

A *region* is the largest real-world failure domain: its own cluster,
its own placement zones, its own blast radius.  The topology declares
the regions, their relative user-population shares and workload-clock
offsets (timezones), and the one-way latency/loss matrix of the
long-haul links between them.  :meth:`RegionTopology.build_fabric`
turns the matrix into a :class:`~repro.net.fabric.NetworkFabric` whose
"zones" are region names — so the cross-region layer (front-door legs,
health probes, replication shipping) reuses the exact same link fault
model the intra-cluster fabric has, including partitions and loss.

The cross-region fabric defaults to ``jitter_cv=0``: long-haul RTTs in
the model are deterministic unless loss is configured, which keeps a
healthy multi-region run free of extra RNG draws (the determinism
contract every export depends on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..arch.platform import Platform
from ..net.fabric import LinkFault, NetworkFabric
from ..sim.engine import Environment
from ..sim.rng import RandomStreams

__all__ = ["RegionSpec", "RegionTopology", "DEFAULT_INTER_REGION_RTT",
           "two_region_topology"]

#: Default one-way inter-region propagation latency (seconds) for pairs
#: the matrix does not configure — a transatlantic-ish 40 ms.
DEFAULT_INTER_REGION_RTT = 40e-3


@dataclass
class RegionSpec:
    """One region's cluster size, users, and workload clock."""

    name: str
    #: Machines in this region's cluster.
    machines: int = 4
    #: Fraction of the global user population homed here (normalized
    #: across the topology by the harness).
    population_share: float = 1.0
    #: Last-mile latency from a homed user to this region's front-door
    #: POP (seconds, one way).  Paid regardless of where the request is
    #: ultimately served; failover adds inter-region legs on top.
    client_latency: float = 1e-3
    #: Seconds the region's workload clock is shifted (its timezone):
    #: per-region diurnal patterns peak ``time_offset`` later.
    time_offset: float = 0.0
    #: Hardware platform; None uses the harness default (XEON).
    platform: Optional[Platform] = None

    def __post_init__(self):
        if not self.name:
            raise ValueError("region name must be non-empty")
        if self.machines < 1:
            raise ValueError("region needs at least one machine")
        if self.population_share < 0:
            raise ValueError("population_share must be >= 0")
        if self.client_latency < 0:
            raise ValueError("client_latency must be >= 0")


@dataclass
class RegionTopology:
    """The regions plus the long-haul link matrix between them."""

    regions: List[RegionSpec]
    #: One-way latency per ordered (src, dst) region pair; missing
    #: pairs take the reverse direction's value, then the default.
    latency: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: Per-message loss rate per ordered pair (paid as RTO retransmits
    #: on the cross-region fabric); missing pairs are lossless.
    loss: Dict[Tuple[str, str], float] = field(default_factory=dict)
    default_latency: float = DEFAULT_INTER_REGION_RTT
    #: RTO charged per lost cross-region transmission.
    loss_rto: float = 0.2

    def __post_init__(self):
        if not self.regions:
            raise ValueError("topology needs at least one region")
        names = [spec.name for spec in self.regions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate region names: {names}")
        for key in list(self.latency) + list(self.loss):
            for name in key:
                if name not in names:
                    raise ValueError(f"matrix names unknown region "
                                     f"{name!r}")
        for rate in self.loss.values():
            if not 0.0 <= rate < 1.0:
                raise ValueError("loss rates must be in [0, 1)")

    @property
    def names(self) -> List[str]:
        """Region names in declaration order."""
        return [spec.name for spec in self.regions]

    def spec(self, name: str) -> RegionSpec:
        for spec in self.regions:
            if spec.name == name:
                return spec
        raise ValueError(f"unknown region {name!r}")

    def latency_between(self, src: str, dst: str) -> float:
        """One-way latency for an ordered region pair (0 within one)."""
        if src == dst:
            return 0.0
        if (src, dst) in self.latency:
            return self.latency[(src, dst)]
        if (dst, src) in self.latency:
            return self.latency[(dst, src)]
        return self.default_latency

    def min_inter_region_latency(self) -> Optional[float]:
        """Smallest one-way latency between two distinct regions, or
        ``None`` for a single-region topology.

        This is the floor any replication batch pays before it can
        apply remotely: a staleness bound at or below ``interval +
        min_inter_region_latency()`` is unsatisfiable even on healthy
        links (the CFG003 static check).
        """
        best: Optional[float] = None
        for src in self.names:
            for dst in self.names:
                if src == dst:
                    continue
                lat = self.latency_between(src, dst)
                if best is None or lat < best:
                    best = lat
        return best

    def build_fabric(self, env: Environment,
                     rng: RandomStreams) -> NetworkFabric:
        """The cross-region fabric: one zone per region.

        Configured loss entries become standing :class:`LinkFault`\\ s
        (drawing retransmit delays from the shared seeded RNG only for
        lossy pairs); partitions are injected later by
        :class:`~repro.region.InterRegionPartition`."""
        zone_latency = {}
        for src in self.names:
            for dst in self.names:
                zone_latency[(src, dst)] = self.latency_between(src, dst)
        fabric = NetworkFabric(env, rng=rng, zone_latency=zone_latency,
                               jitter_cv=0.0, congestion_coeff=0.0)
        for (src, dst), rate in sorted(self.loss.items()):
            if rate > 0.0:
                fabric.link_faults[(src, dst)] = LinkFault(
                    loss_rate=rate, rto=self.loss_rto)
        return fabric


def two_region_topology(machines: int = 3,
                        primary: str = "us-east",
                        secondary: str = "eu-west",
                        primary_share: float = 0.6,
                        rtt: float = DEFAULT_INTER_REGION_RTT,
                        time_offset: float = 0.0) -> RegionTopology:
    """The canonical two-region layout the examples and CI smoke use."""
    return RegionTopology(
        regions=[
            RegionSpec(name=primary, machines=machines,
                       population_share=primary_share),
            RegionSpec(name=secondary, machines=machines,
                       population_share=1.0 - primary_share,
                       time_offset=time_offset),
        ],
        latency={(primary, secondary): rtt},
    )
