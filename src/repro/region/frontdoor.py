"""Geo front door: latency-aware routing with health-probe failover.

Each user population is *homed* in the region nearest to it.  The front
door steers a population's requests to its home region while the home
is healthy, and — in ``failover`` mode — re-routes to the nearest
healthy region when probes say otherwise, re-homing back once the home
passes ``healthy_threshold`` consecutive probes.  ``sticky`` mode is
the ablation baseline: requests always go home, outage or not.

Health is observed the way a real global load balancer observes it:
synthetic probes over the same cross-region fabric user traffic rides.
A probe fails when it exceeds ``probe_timeout`` (an
:class:`~repro.region.InterRegionPartition` stalls it on the cut) or
when it lands in a region with no machine up (a
:class:`~repro.region.RegionOutage`).  Detection is therefore never
instant — the front door pays ``unhealthy_threshold`` probe intervals
of misrouted traffic before ejecting a region, which is exactly the
detection-time component of cross-region MTTR in the scorecard.

Requests served away from home carry ``repro.home_region`` /
``repro.served_region`` span annotations, and — when a
:class:`~repro.region.ReplicationManager` is attached — stale reads
(replication lag beyond the bound) are flagged on the trace too, so
the consistency cost of failover is visible in the OTLP export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..tracing.collector import TraceCollector
from .deployment import MultiRegionDeployment
from .replication import ReplicationManager

__all__ = ["FrontDoor", "FrontDoorConfig", "FrontDoorEvent",
           "PopulationClient"]

_MODES = ("failover", "sticky")


@dataclass
class FrontDoorConfig:
    """Probing cadence and routing mode of the front door."""

    #: Seconds between health probes per (population, region) pair.
    probe_interval: float = 0.5
    #: A probe slower than this is a failure (partitions stall probes
    #: indefinitely; this bounds how long the front door waits).
    probe_timeout: float = 1.0
    #: Consecutive probe failures before a region is ejected.
    unhealthy_threshold: int = 2
    #: Consecutive probe successes before an ejected region is re-homed.
    healthy_threshold: int = 2
    #: ``failover`` re-routes away from unhealthy regions; ``sticky``
    #: always serves from the home region (the ablation baseline).
    mode: str = "failover"

    def __post_init__(self):
        if self.probe_interval <= 0:
            raise ValueError("probe_interval must be > 0")
        if self.probe_timeout <= 0:
            raise ValueError("probe_timeout must be > 0")
        if self.unhealthy_threshold < 1 or self.healthy_threshold < 1:
            raise ValueError("thresholds must be >= 1")
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}")


@dataclass
class FrontDoorEvent:
    """One routing-table change: a region ejected or restored for a
    population."""

    time: float
    population: str
    region: str
    kind: str  # "ejected" | "restored"
    detail: str = ""

    def as_tuple(self) -> Tuple[float, str, str, str]:
        return (self.time, self.population, self.region, self.kind)


class PopulationClient:
    """One population's view of the front door.

    Duck-types the slice of ``Deployment`` that
    :class:`~repro.workload.generator.OpenLoopGenerator` consumes
    (``env`` / ``app`` / ``collector`` / ``execute``), so the existing
    open-loop generator drives multi-region traffic unchanged."""

    def __init__(self, frontdoor: "FrontDoor", population: str):
        self._fd = frontdoor
        self.population = population
        self.env = frontdoor.env
        self.app = frontdoor.deployment.app
        self.collector = frontdoor.collector

    def execute(self, op_name: str, user: Optional[int] = None,
                collect: bool = True):
        return self.env.process(
            self._fd._route(self.population, op_name, user, collect),
            name=f"frontdoor.{self.population}.{op_name}")


class FrontDoor:
    """Global request router over a :class:`MultiRegionDeployment`."""

    def __init__(self, deployment: MultiRegionDeployment,
                 replication: Optional[ReplicationManager] = None,
                 config: Optional[FrontDoorConfig] = None):
        self.deployment = deployment
        self.env = deployment.env
        self.replication = replication
        self.config = config or FrontDoorConfig()
        #: Client-visible (end-to-end, including wide-area legs) traces.
        #: Per-region server-side traces stay in each region's own
        #: deployment collector.
        self.collector = TraceCollector()
        self.events: List[FrontDoorEvent] = []
        #: Requests routed per (home, served) region pair.
        self.requests: Dict[Tuple[str, str], int] = {}
        names = deployment.region_names
        self._healthy: Dict[Tuple[str, str], bool] = {
            (pop, region): True for pop in names for region in names}
        self._fail_streak: Dict[Tuple[str, str], int] = {
            key: 0 for key in self._healthy}
        self._ok_streak: Dict[Tuple[str, str], int] = {
            key: 0 for key in self._healthy}
        self._metrics = None
        self._started = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "FrontDoor":
        """Spawn one probe loop per (population, region) pair."""
        if self._started:
            raise RuntimeError("front door already started")
        self._started = True
        for pop in self.deployment.region_names:
            for region in self.deployment.region_names:
                self.env.process(
                    self._probe_loop(pop, region),
                    name=f"frontdoor.probe.{pop}->{region}")
        return self

    def client(self, population: str) -> PopulationClient:
        """The generator-facing client for one homed population."""
        if population not in self.deployment.region_names:
            raise ValueError(f"unknown population/region "
                             f"{population!r}")
        return PopulationClient(self, population)

    def set_metrics(self, registry) -> None:
        """Attach a metrics registry for routing/health/stale counters
        (see :func:`repro.obs.instrument.instrument_frontdoor`)."""
        self._metrics = registry
        for (pop, region), healthy in sorted(self._healthy.items()):
            self._health_gauge(pop, region, healthy)

    # -- health probing ----------------------------------------------------
    def healthy(self, population: str, region: str) -> bool:
        return self._healthy[(population, region)]

    def _region_live(self, region: str) -> bool:
        cluster = self.deployment.region(region).cluster
        return any(not m.down for m in cluster.machines)

    def _probe_once(self, population: str, region: str):
        """One synthetic health probe: client leg, wide-area round
        trip, and a liveness check where it lands."""
        spec = self.deployment.topology.spec(population)
        yield self.env.timeout(spec.client_latency)
        if region != population:
            fabric = self.deployment.fabric
            yield from fabric.wire_delay(population, region)
            alive = self._region_live(region)
            yield from fabric.wire_delay(region, population)
        else:
            alive = self._region_live(region)
        yield self.env.timeout(spec.client_latency)
        return alive

    def _probe_loop(self, population: str, region: str):
        cfg = self.config
        while True:
            yield self.env.timeout(cfg.probe_interval)
            probe = self.env.process(
                self._probe_once(population, region),
                name=f"frontdoor.probe1.{population}->{region}")
            timeout = self.env.timeout(cfg.probe_timeout)
            yield self.env.any_of([probe, timeout])
            # A probe still in flight past the timeout (stalled on a
            # partition) is a failure; it finishes harmlessly later.
            ok = probe.processed and bool(probe.value)
            self._record_probe(population, region, ok)

    def _record_probe(self, population: str, region: str,
                      ok: bool) -> None:
        key = (population, region)
        cfg = self.config
        if ok:
            self._ok_streak[key] += 1
            self._fail_streak[key] = 0
            if (not self._healthy[key]
                    and self._ok_streak[key] >= cfg.healthy_threshold):
                self._healthy[key] = True
                self._transition(population, region, "restored",
                                 f"{self._ok_streak[key]} consecutive "
                                 f"probe successes")
        else:
            self._fail_streak[key] += 1
            self._ok_streak[key] = 0
            if (self._healthy[key]
                    and self._fail_streak[key] >= cfg.unhealthy_threshold):
                self._healthy[key] = False
                self._transition(population, region, "ejected",
                                 f"{self._fail_streak[key]} consecutive "
                                 f"probe failures")

    def _transition(self, population: str, region: str, kind: str,
                    detail: str) -> None:
        self.events.append(FrontDoorEvent(
            time=self.env.now, population=population, region=region,
            kind=kind, detail=detail))
        self._health_gauge(population, region,
                           self._healthy[(population, region)])

    def _health_gauge(self, population: str, region: str,
                      healthy: bool) -> None:
        if self._metrics is not None:
            self._metrics.gauge(
                "repro_region_healthy",
                "Front-door health verdict per (population, region)",
                ("population", "region")).labels(
                population=population, region=region).set(
                1.0 if healthy else 0.0)

    # -- routing -----------------------------------------------------------
    def serving_region(self, home: str) -> str:
        """Where a request homed in ``home`` is served right now."""
        if self.config.mode == "sticky":
            return home
        if self._healthy[(home, home)]:
            return home
        topo = self.deployment.topology
        candidates = [r for r in self.deployment.region_names
                      if r != home and self._healthy[(home, r)]]
        if not candidates:
            # Nowhere better to go: keep trying home.
            return home
        return min(candidates,
                   key=lambda r: (topo.latency_between(home, r), r))

    def _route(self, home: str, op_name: str, user: Optional[int],
               collect: bool):
        """One end-to-end request from a homed user: client leg, any
        wide-area legs, the serving region's full call tree, and the
        way back."""
        start = self.env.now
        spec = self.deployment.topology.spec(home)
        served = self.serving_region(home)
        fabric = self.deployment.fabric
        yield self.env.timeout(spec.client_latency)
        if served != home:
            yield from fabric.wire_delay(home, served)
        proc = self.deployment.region(served).execute(op_name, user=user)
        yield proc
        trace = proc.value
        if served != home:
            yield from fabric.wire_delay(served, home)
        yield self.env.timeout(spec.client_latency)
        if served != home:
            ann = trace.root.annotations
            ann["home_region"] = home
            ann["served_region"] = served
            if self.replication is not None:
                staleness = self.replication.observe_read(served, home)
                if staleness is not None:
                    ann["stale_read"] = True
                    ann["staleness_seconds"] = staleness
                    self._stale_metric(served)
        self.requests[(home, served)] = \
            self.requests.get((home, served), 0) + 1
        if self._metrics is not None:
            self._metrics.counter(
                "repro_region_requests_total",
                "Front-door requests by home and serving region",
                ("home", "served")).labels(
                home=home, served=served).inc()
        if collect:
            self.collector.collect(
                trace, latency_override=self.env.now - start)
        return trace

    def _stale_metric(self, served: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(
                "repro_region_stale_reads_total",
                "Failed-over reads that exceeded the staleness bound",
                ("region",)).labels(region=served).inc()

    # -- reporting ---------------------------------------------------------
    def requests_served_away(self) -> int:
        """Requests served outside their home region."""
        return sum(count for (home, served), count in
                   self.requests.items() if home != served)

    def event_tuples(self) -> List[Tuple[float, str, str, str]]:
        """Deterministic event log for byte-identity comparisons."""
        return [event.as_tuple() for event in self.events]
