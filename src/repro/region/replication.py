"""Async cross-region replication with bounded-staleness accounting.

Every datastore tier is deployed in every region; writes are applied
locally and shipped to the other regions in periodic batches over the
cross-region fabric.  The model tracks, per ordered region pair, the
sim time *through which* the destination has applied the source's
writes — ``applied_through``.  Staleness of a read is then simply
``now - applied_through(src, dst)``:

* healthy links keep staleness near ``interval + one-way RTT``
  (bounded staleness);
* an :class:`~repro.region.InterRegionPartition` stalls the in-flight
  batch on the cut, so staleness grows linearly until heal;
* a :class:`~repro.region.RegionOutage` takes the *source* down — there
  is nothing to ship, so every failed-over read against the survivors
  observes ever-staler data until the region repairs and catches up.

A read is **stale** when its staleness exceeds ``staleness_bound``.
The front door asks :meth:`ReplicationManager.observe_read` on every
cross-region (failed-over) request; stale reads are counted per served
region and surfaced as ``repro.stale*`` span annotations in the OTLP
export — the user-visible consistency cost of geo failover.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .deployment import MultiRegionDeployment

__all__ = ["ReplicationManager"]


class ReplicationManager:
    """Periodic batch shipping between every ordered region pair."""

    def __init__(self, deployment: MultiRegionDeployment,
                 interval: float = 0.25,
                 staleness_bound: float = 1.0):
        if interval <= 0:
            raise ValueError("replication interval must be > 0")
        if staleness_bound <= 0:
            raise ValueError("staleness_bound must be > 0")
        self.deployment = deployment
        self.env = deployment.env
        self.interval = interval
        self.staleness_bound = staleness_bound
        #: Datastore tiers subject to replication (sorted for
        #: deterministic iteration everywhere).
        self.services: List[str] = sorted(
            deployment.app.datastore_services())
        names = deployment.region_names
        self._applied: Dict[Tuple[str, str], float] = {
            (src, dst): 0.0
            for src in names for dst in names if src != dst}
        self.batches_shipped = 0
        self.batches_skipped = 0
        self.stale_reads = 0
        self.stale_reads_by_region: Dict[str, int] = {
            name: 0 for name in names}
        self._started = False

    def start(self) -> "ReplicationManager":
        if self._started:
            raise RuntimeError("replication already started")
        self._started = True
        for src, dst in sorted(self._applied):
            self.env.process(self._ship(src, dst),
                             name=f"replicate:{src}->{dst}")
        return self

    def _source_alive(self, region: str) -> bool:
        cluster = self.deployment.region(region).cluster
        return any(not m.down for m in cluster.machines)

    def _ship(self, src: str, dst: str):
        fabric = self.deployment.fabric
        while True:
            yield self.env.timeout(self.interval)
            if not self._source_alive(src):
                # A dead region ships nothing: survivors serve ever
                # staler data until it repairs and catches up.
                self.batches_skipped += 1
                continue
            cut = self.env.now
            # The batch rides the cross-region fabric: partitions stall
            # it on the cut, loss pays RTO retransmits.
            yield from fabric.wire_delay(src, dst)
            self._applied[(src, dst)] = cut
            self.batches_shipped += 1

    # -- read-side accounting ---------------------------------------------
    def applied_through(self, src: str, dst: str) -> float:
        """Sim time through which ``dst`` has ``src``'s writes."""
        if src == dst:
            return self.env.now
        return self._applied[(src, dst)]

    def staleness(self, service: str, served: str,
                  home: str) -> float:
        """Seconds of replication lag one read observes.

        The write source is the service's pinned primary region if it
        has one, else the requesting user's home region (multi-primary:
        the user reads their own recent writes)."""
        src = self.deployment.app.region_of(service) or home
        if src == served:
            return 0.0
        return self.env.now - self._applied[(src, served)]

    def observe_read(self, served: str, home: str
                     ) -> Optional[float]:
        """Account one request served in ``served`` for a user homed
        in ``home``; returns the max datastore staleness if it exceeds
        the bound (a stale read), else None."""
        if not self.services:
            return None
        worst = max(self.staleness(service, served, home)
                    for service in self.services)
        if worst <= self.staleness_bound:
            return None
        self.stale_reads += 1
        self.stale_reads_by_region[served] += 1
        return worst
