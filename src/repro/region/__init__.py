"""Multi-region deployments: regions, geo routing, replication, chaos.

The region layer composes the existing single-cluster machinery into a
planet-scale story (the paper's cloud/edge failure-domain hierarchy,
one level up):

* :class:`RegionTopology` / :class:`RegionSpec` — named regions with an
  inter-region RTT/loss matrix, user-population shares, and per-region
  workload-clock offsets;
* :class:`MultiRegionDeployment` — one full per-region deployment
  behind a cross-region :class:`~repro.net.fabric.NetworkFabric` whose
  zones are region names;
* :class:`FrontDoor` — geo/latency-aware routing with health-probe
  failover (``sticky`` mode is the ablation baseline);
* :class:`ReplicationManager` — async bounded-staleness replication;
  failed-over reads can be stale, and the traces say so;
* :class:`RegionOutage` / :class:`InterRegionPartition` — region-scale
  chaos on deterministic fault schedules;
* :func:`run_region_scenario` / :class:`GlobalScorecard` — the harness
  and the globally-scoped resilience scorecard (blast radius per
  region, cross-region MTTR, stale-read counts).
"""

from .deployment import MultiRegionDeployment
from .faults import InterRegionPartition, RegionOutage
from .frontdoor import (FrontDoor, FrontDoorConfig, FrontDoorEvent,
                        PopulationClient)
from .harness import (GlobalScorecard, RegionResult, RegionRun,
                      run_region_scenario)
from .replication import ReplicationManager
from .topology import (DEFAULT_INTER_REGION_RTT, RegionSpec,
                       RegionTopology, two_region_topology)

__all__ = [
    "RegionSpec",
    "RegionTopology",
    "DEFAULT_INTER_REGION_RTT",
    "two_region_topology",
    "MultiRegionDeployment",
    "FrontDoor",
    "FrontDoorConfig",
    "FrontDoorEvent",
    "PopulationClient",
    "ReplicationManager",
    "RegionOutage",
    "InterRegionPartition",
    "GlobalScorecard",
    "RegionResult",
    "RegionRun",
    "run_region_scenario",
]
