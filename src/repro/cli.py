"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    List the suite's applications with their Table 1 characteristics.
``describe APP``
    Show one application's services, operations, and default mix.
``simulate APP --qps N --duration S``
    Deploy and drive one application; print the measurement summary.
    ``--metrics-out``/``--traces-out`` attach the observability layer
    and write Prometheus text exposition / OTLP JSON artifacts.
    ``--degradation`` arms graceful degradation — criticality-aware
    front-door shedding, the brownout controller, and the app's
    declared degradation policies — and reports brownout transitions,
    degradation events, and fidelity counts.
``report qos APP``
    Run one experiment and attribute QoS violations to culprit tiers
    (the Sec. 7 "which microservice started the cascade" analysis);
    ``--delay``/``--slow`` inject tier faults to provoke one;
    ``--json`` emits the machine-readable episode report instead of
    the rendered tables.
``report degradation APP``
    Run one experiment with graceful degradation armed (optionally
    under ``--delay``/``--slow`` faults) and report the brownout level
    trajectory, per-criticality-class goodput and utility rates, and
    the degradation event counters; ``--json`` for the machine-readable
    form.
``report critical-path APP``
    Aggregated per-tier critical-path breakdown over one run's traces:
    presence on the path, p50/p95/p99 share of end-to-end latency, and
    the exclusive vs. blocked split of each tier's self time — "which
    tier's speedup moves the tail" from one command.
``profile APP``
    Run one scenario with the simulator flight recorder attached and
    print where the *simulator's* wall time goes: per-event-type engine
    loop attribution plus scoped sections (collection, exporters).
    ``--out`` writes machine-readable ``profile.json``;
    ``--sample-rate`` profiles the sampled-tracing configuration.
``predict [--scenario NAME]``
    Train a violation predictor on seeded runs of a ramped-fault
    scenario, evaluate it on held-out seeds (precision / recall /
    lead time), and optionally re-run with proactive mitigation
    (``--mitigate prescale|pretrip|shed``) to print the
    violations-avoided scorecard.  ``--out`` writes the report JSON.
``chaos APP [--scenario NAME ...]``
    Run chaos scenarios (deterministic fault schedules with optional
    health-checked failover) and print resilience scorecards:
    detection time, MTTR, blast radius, goodput lost, attributed
    culprit.  ``--out`` writes the scorecards as JSON; a steady-state
    violation on a no-fault baseline exits non-zero.
``region APP [--mode failover|sticky]``
    Run a two-region deployment through a region outage behind the geo
    front door: per-region clusters over a cross-region RTT matrix,
    async replication with bounded staleness, health-probe failover.
    Prints the global resilience scorecard (blast radius per region,
    cross-region MTTR, stale reads); ``--compare-sticky`` also runs the
    sticky-routing ablation and reports the goodput ratio; ``--out``
    writes JSON; ``--max-mttr`` gates the exit code (CI's region-smoke
    hook), as does a broken no-fault baseline.
``synth generate SPEC``
    Build a parametric synthetic topology (``synth:PATTERN:nSIZE:
    seedSEED``, six patterns from sequential chain to random mesh) and
    emit its canonical byte-stable topology JSON.  Every command that
    takes an APP also accepts these specs directly
    (``repro simulate synth:mesh:n32:seed7 ...``).
``synth clone TRACES_FILE --name NAME``
    Infer a matching application from an exported trace set (OTLP from
    ``simulate --traces-out`` or schema-v2 JSON): call-graph structure,
    serial-vs-parallel dispatch, per-tier service-time distributions,
    and payload sizes.  ``--validate`` re-simulates the clone and gates
    (exit code) on the per-tier p50/p95/p99 fidelity tolerance;
    ``--report`` writes the comparison as JSON.
``synth matrix``
    Sweep patterns x sizes x seeds; each cell smoke-runs a clean
    baseline plus a chaos scenario and lands in one consolidated
    byte-stable report (markdown to stdout, JSON via ``--out``).
``provision APP --qps N``
    Print the balanced replica allocation (Sec. 3.8) for a target load.
``sweep APP --qps A B C``
    Throughput/tail curve over a list of offered loads (analytic).
``dot APP``
    Emit the microservice dependency graph in Graphviz DOT format
    (the Fig. 4-8 diagrams).
``lint [PATHS]``
    Run the simulation-safety static analysis (``simlint`` rule codes
    SIM001-SIM007), the topology validator over the registered
    application graphs (TOPO001-TOPO006, including region pins), and
    the fault-schedule validators (FAULT001-FAULT004, including
    dangling region targets); non-zero exit on findings.
``lint --app NAME --load RPS [--config plan.json]``
    Flow-analysis mode: statically check one application's deployment
    plan at the declared load using the analytic queueing backend —
    saturated tiers (CAP001-CAP004), infeasible deadlines/timeouts
    (DLINE001-DLINE004), and cross-layer policy inconsistencies
    (CFG001-CFG004).  ``--format sarif`` emits a SARIF 2.1.0 log for
    CI annotation.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analytic.model import AnalyticModel
from .apps.registry import app_names, build_app
from .core.experiment import simulate
from .core.provisioning import balanced_provision
from .core.suite import DeathStarBench
from .services.graphviz import to_dot
from .stats.tables import format_table

__all__ = ["main"]


def _cmd_list(_args) -> int:
    print(DeathStarBench().table1())
    return 0


def _cmd_describe(args) -> int:
    app = build_app(args.app)
    rows = [[name, svc.language, svc.kind,
             f"{svc.work_mean * 1e6:.0f}", f"{svc.freq_sensitivity:.2f}"]
            for name, svc in sorted(app.services.items())]
    print(format_table(
        ["service", "language", "kind", "work (us)", "freq beta"],
        rows, title=f"{app.name}: {app.unique_microservices} services, "
                    f"protocol={app.protocol}"))
    print()
    mix = app.default_mix()
    rows = [[op.name, f"{mix[op.name]:.1%}", op.root.call_count(),
             op.root.depth(), f"{app.operation_work(op.name) * 1e6:.0f}"]
            for op in app.operations.values()]
    print(format_table(
        ["operation", "mix", "RPCs", "depth", "CPU work (us)"], rows,
        title="operations"))
    return 0


def _app_arg(text: str) -> str:
    """An application name: a registered app, or a ``synth:`` generator
    spec (``synth:PATTERN:nSIZE:seedSEED``) resolved on demand."""
    if text in app_names() or text.startswith("synth:"):
        return text
    raise argparse.ArgumentTypeError(
        f"unknown application {text!r}; choose from "
        f"{', '.join(app_names())} or a generator spec like "
        f"synth:mesh:n32:seed7")


def _nonnegative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be > 0")
    return value


def _resilience_policy(args):
    """Build a default policy from ``simulate``'s resilience flags, or
    None when no flag was given (the policy-free fast path)."""
    if not (args.retries or args.rpc_timeout or args.breakers):
        return None
    from .resilience import BreakerConfig, ResiliencePolicy
    timeout = args.rpc_timeout
    return ResiliencePolicy(
        rpc_timeout=timeout,
        max_retries=args.retries,
        backoff_base=(timeout or 0.01) * 0.5 if args.retries else 0.0,
        retry_budget_ratio=0.2 if args.retries else None,
        breaker=BreakerConfig() if args.breakers else None)


def _sample_rate(text: str) -> float:
    value = float(text)
    if not 0.0 < value <= 1.0:
        raise argparse.ArgumentTypeError("must be in (0, 1]")
    return value


def _sampler_from_args(args):
    """Build a TraceSampler from ``--sample-rate``/``--sample-seed``,
    or None when sampling is off (rate absent or 1.0)."""
    rate = getattr(args, "sample_rate", None)
    if rate is None or rate >= 1.0:
        return None
    from .tracing.sampling import TraceSampler
    return TraceSampler(rate, seed=getattr(args, "sample_seed", 0))


def _cmd_simulate(args) -> int:
    app = build_app(args.app)
    replicas = balanced_provision(app, target_qps=max(args.qps * 1.5, 50))
    policy = _resilience_policy(args)
    metrics = None
    if args.metrics_out or args.traces_out:
        from .obs import MetricsRegistry
        metrics = MetricsRegistry(scrape_period=args.scrape_period)
    sampler = _sampler_from_args(args)
    manager = shedder = None
    if args.degradation:
        from .resilience import arm_degradation
        manager, shedder = arm_degradation(app, qps=args.qps)
    result = simulate(app, qps=args.qps, duration=args.duration,
                      n_machines=args.machines, replicas=replicas,
                      seed=args.seed, default_policy=policy,
                      metrics=metrics, sampler=sampler,
                      shedder=shedder, degradation=manager)
    rows = [
        ["offered load (QPS)", f"{args.qps:g}"],
        ["throughput (req/s)", f"{result.throughput():.1f}"],
        ["mean latency (ms)", f"{result.mean_latency() * 1e3:.2f}"],
        ["p95 (ms)", f"{result.tail(0.95) * 1e3:.2f}"],
        ["p99 (ms)", f"{result.tail(0.99) * 1e3:.2f}"],
        ["QoS target (ms)", f"{app.qos_latency * 1e3:.1f}"],
        ["QoS met", str(result.qos_met())],
        ["completion ratio", f"{result.completion_ratio():.3f}"],
    ]
    if policy is not None:
        stats = result.deployment.resilience_stats
        rows += [
            ["success ratio", f"{result.success_ratio():.3f}"],
            ["retries", str(stats["retries"])],
            ["rpc timeouts", str(stats["timeouts"])],
            ["breaker rejections", str(stats["breaker_rejected"])],
        ]
    if manager is not None:
        collector = result.collector
        shed_by_class = ", ".join(
            f"{crit}={count}" for crit, count
            in sorted(shedder.shed_by_class.items())) or "none"
        rows += [
            ["brownout level (final/peak)",
             f"{manager.level}/"
             f"{max([ev.level_to for ev in manager.events], default=0)}"],
            ["brownout transitions", str(len(manager.events))],
            ["degradation events",
             f"{manager.degradation_events} "
             f"(drops={sum(manager.drops.values())}, "
             f"fallbacks={sum(manager.fallbacks.values())}, "
             f"fanout cuts={sum(manager.fanout_cuts.values())})"],
            ["shed by class", shed_by_class],
            ["degraded / full fidelity",
             f"{collector.degraded_count} / "
             f"{collector.full_fidelity_count}"],
        ]
    dropped = result.collector.dropped_traces
    if dropped:
        rows.append(["dropped traces", str(dropped)])
    if sampler is not None:
        rows += [
            ["trace sampling", f"rate={sampler.rate:g} "
                               f"seed={sampler.seed}"],
            ["effective sample size",
             str(result.collector.effective_sample_size)],
        ]
    print(format_table(["metric", "value"], rows,
                       title=f"{app.name} measurement"))
    if args.metrics_out:
        from .obs import to_prometheus_text
        with open(args.metrics_out, "w") as fh:
            fh.write(to_prometheus_text(result.metrics,
                                        now=result.duration))
        print(f"metrics written to {args.metrics_out}")
    if args.traces_out:
        from .obs import traces_to_otlp_json
        with open(args.traces_out, "w") as fh:
            fh.write(traces_to_otlp_json(result.collector.traces,
                                         indent=None))
        print(f"traces written to {args.traces_out}")
    if args.dashboard:
        from .stats.dashboard import render_dashboard
        print()
        print(render_dashboard(result))
    return 0


def _parse_fault(text: str, what: str) -> tuple:
    """Parse a ``SERVICE:VALUE`` fault-injection flag."""
    service, sep, value = text.partition(":")
    if not sep or not service:
        raise argparse.ArgumentTypeError(
            f"expected SERVICE:{what}, got {text!r}")
    try:
        number = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad {what.lower()} in {text!r}") from None
    if number <= 0:
        raise argparse.ArgumentTypeError(f"{what.lower()} must be > 0")
    return service, number


def _cmd_report_qos(args) -> int:
    from .obs import MetricsRegistry, attribute_qos_violations
    app = build_app(args.app)
    for service, _ in args.delay + args.slow:
        if service not in app.services:
            print(f"error: {app.name} has no service {service!r}",
                  file=sys.stderr)
            return 2
    replicas = balanced_provision(app, target_qps=max(args.qps * 1.5, 50))

    def inject(deployment):
        for service, seconds in args.delay:
            deployment.delay_service(service, seconds)
        for service, factor in args.slow:
            deployment.slow_down_service(service, factor)

    result = simulate(app, qps=args.qps, duration=args.duration,
                      n_machines=args.machines, replicas=replicas,
                      seed=args.seed, metrics=MetricsRegistry(),
                      sampler=_sampler_from_args(args),
                      setup=inject if (args.delay or args.slow)
                      else None)
    report = attribute_qos_violations(
        result, target=args.target, p=args.percentile,
        window=args.window)
    if args.json:
        import json
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True,
                         allow_nan=False))
    else:
        print(report.render())
    return 0


def _cmd_report_critical_path(args) -> int:
    from .tracing.analysis import critical_path_breakdown
    app = build_app(args.app)
    replicas = balanced_provision(app, target_qps=max(args.qps * 1.5, 50))
    result = simulate(app, qps=args.qps, duration=args.duration,
                      n_machines=args.machines, replicas=replicas,
                      seed=args.seed, sampler=_sampler_from_args(args))
    collector = result.collector
    traces = [t for t in collector.traces
              if t.ok and t.start >= result.warmup]
    if not traces:
        print("error: no successful post-warmup traces to analyze",
              file=sys.stderr)
        return 1
    breakdown = critical_path_breakdown(traces)
    if args.json:
        import json
        payload = {
            "app": app.name, "qps": args.qps,
            "duration": args.duration, "seed": args.seed,
            "traces_analyzed": len(traces),
            "sampling": collector.sampling_description(),
            "services": breakdown,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = [[svc,
             f"{row['presence']:.1%}",
             f"{row['share_p50']:.1%}",
             f"{row['share_p95']:.1%}",
             f"{row['share_p99']:.1%}",
             f"{row['mean_exclusive'] * 1e3:.3f}",
             f"{row['mean_blocked'] * 1e3:.3f}"]
            for svc, row in sorted(
                breakdown.items(),
                key=lambda item: -item[1]["share_p95"])]
    title = (f"{app.name} critical-path breakdown "
             f"({len(traces)} traces")
    desc = collector.sampling_description()
    if desc["mode"] != "unsampled":
        title += (f", head-sampled rate={desc['rate']:g} "
                  f"n={desc['effective_sample_size']}")
    title += ")"
    print(format_table(
        ["service", "on path", "share p50", "share p95", "share p99",
         "excl (ms)", "blocked (ms)"], rows, title=title))
    return 0


def _cmd_report_degradation(args) -> int:
    from .resilience import arm_degradation
    app = build_app(args.app)
    for service, _ in args.delay + args.slow:
        if service not in app.services:
            print(f"error: {app.name} has no service {service!r}",
                  file=sys.stderr)
            return 2
    replicas = balanced_provision(app, target_qps=max(args.qps * 1.5, 50))
    manager, shedder = arm_degradation(app, qps=args.qps)

    def inject(deployment):
        for service, seconds in args.delay:
            deployment.delay_service(service, seconds)
        for service, factor in args.slow:
            deployment.slow_down_service(service, factor)

    result = simulate(app, qps=args.qps, duration=args.duration,
                      n_machines=args.machines, replicas=replicas,
                      seed=args.seed, shedder=shedder,
                      degradation=manager,
                      setup=inject if (args.delay or args.slow)
                      else None)
    collector = result.collector
    window = result.duration - result.warmup
    ok = collector.ok_by_class(start=result.warmup)
    utility = collector.utility_by_class(start=result.warmup)
    if args.json:
        import json
        payload = {
            "app": app.name, "qps": args.qps,
            "duration": args.duration, "seed": args.seed,
            "brownout_events": manager.event_log(),
            "final_level": manager.level,
            "degradation_events": manager.degradation_events,
            "drops": dict(manager.drops),
            "fallbacks": dict(manager.fallbacks),
            "fanout_cuts": dict(manager.fanout_cuts),
            "shed_by_class": dict(shedder.shed_by_class),
            "admitted_by_class": dict(shedder.admitted_by_class),
            "degraded_responses": collector.degraded_count,
            "full_fidelity_responses": collector.full_fidelity_count,
            "by_criticality": {crit: dict(counts) for crit, counts
                               in collector.by_criticality.items()},
            "goodput_by_class": {crit: count / window
                                 for crit, count in ok.items()},
            "utility_rate_by_class": {crit: total / window
                                      for crit, total
                                      in utility.items()},
        }
        print(json.dumps(payload, indent=2, sort_keys=True,
                         allow_nan=False))
        return 0
    rows = []
    for crit in sorted(collector.by_criticality):
        counts = collector.by_criticality[crit]
        rows.append([
            crit,
            str(counts.get("ok", 0)),
            str(shedder.shed_by_class.get(crit, 0)),
            str(sum(counts.values()) - counts.get("ok", 0)
                - counts.get("shed", 0)),
            f"{ok.get(crit, 0) / window:.1f}",
            f"{utility.get(crit, 0.0) / window:.1f}",
        ])
    print(format_table(
        ["class", "ok", "shed", "failed", "goodput (req/s)",
         "utility (u/s)"], rows,
        title=f"{app.name} degradation report (post-warmup)"))
    print()
    rows = [
        ["final brownout level", str(manager.level)],
        ["brownout transitions", str(len(manager.events))],
        ["subtrees dropped", str(sum(manager.drops.values()))],
        ["fallbacks served", str(sum(manager.fallbacks.values()))],
        ["fan-out cuts", str(sum(manager.fanout_cuts.values()))],
        ["degraded responses", str(collector.degraded_count)],
        ["full-fidelity responses",
         str(collector.full_fidelity_count)],
    ]
    print(format_table(["metric", "value"], rows, title="degradation"))
    if manager.events:
        print()
        rows = [[f"{ev.time:.1f}", f"{ev.level_from} -> {ev.level_to}",
                 "-" if ev.p95 is None else f"{ev.p95 * 1e3:.1f}",
                 f"{ev.occupancy:.2f}"]
                for ev in manager.events]
        print(format_table(
            ["time (s)", "level", "p95 (ms)", "occupancy"], rows,
            title="brownout trajectory"))
    return 0


def _cmd_report(args) -> int:
    if args.report_kind == "critical-path":
        return _cmd_report_critical_path(args)
    if args.report_kind == "degradation":
        return _cmd_report_degradation(args)
    return _cmd_report_qos(args)


def _cmd_profile(args) -> int:
    from .obs.profile import profile_simulation
    result, recorder = profile_simulation(
        args.app, qps=args.qps, duration=args.duration,
        machines=args.machines, seed=args.seed,
        sample_rate=args.sample_rate, sample_seed=args.sample_seed)
    print(recorder.render(top=args.top))
    collector = result.collector
    desc = collector.sampling_description()
    print(f"\nrun: {collector.total_collected} requests, "
          f"{len(collector.traces)} traces stored, "  # simlint: disable=SIM007
          f"sampling={desc['mode']} (rate={desc['rate']:g})")
    if args.out:
        import json
        payload = {
            "profile": recorder.to_dict(),
            "scenario": {
                "app": args.app, "qps": args.qps,
                "duration": args.duration, "machines": args.machines,
                "seed": args.seed,
            },
            "sampling": desc,
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"profile written to {args.out}")
    return 0


def _cmd_predict(args) -> int:
    from .predict import predict_scenario_names, run_predict_pipeline
    if args.list_scenarios:
        from .predict import predict_scenario
        rows = [[name, predict_scenario(name).description]
                for name in predict_scenario_names()]
        print(format_table(["scenario", "description"], rows,
                           title="predict scenarios"))
        return 0
    if args.scenario not in predict_scenario_names():
        print(f"error: unknown scenario {args.scenario!r}; have: "
              f"{', '.join(predict_scenario_names())}", file=sys.stderr)
        return 2
    overlap = set(args.train_seeds) & set(args.eval_seeds)
    if overlap:
        print(f"error: train/eval seeds overlap: "
              f"{sorted(overlap)} — held-out means held out",
              file=sys.stderr)
        return 2
    report = run_predict_pipeline(
        scenario=args.scenario, model_kind=args.model,
        train_seeds=tuple(args.train_seeds),
        eval_seeds=tuple(args.eval_seeds),
        horizon=args.horizon, threshold=args.threshold,
        mitigate=tuple(args.mitigate))
    print(report.render())
    if args.out:
        import json
        with open(args.out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.out}")
    return 0


def _cmd_chaos(args) -> int:
    from .chaos import (DEFAULT_SUITE, run_chaos_suite, scenario,
                        scenario_names)
    from .cluster.health import HealthCheckConfig
    if args.list_scenarios:
        rows = [[name, scenario(name).description]
                for name in scenario_names()]
        print(format_table(["scenario", "description"], rows,
                           title="chaos scenarios"))
        return 0
    if not args.app:
        print("error: APP is required (or use --list-scenarios)",
              file=sys.stderr)
        return 2
    names = args.scenario or DEFAULT_SUITE
    unknown = [n for n in names if n not in scenario_names()]
    if unknown:
        print(f"error: unknown scenario(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    app = build_app(args.app)
    replicas = balanced_provision(app, target_qps=max(args.qps * 1.5, 50))
    failover = False if args.no_failover else HealthCheckConfig(
        probe_interval=args.probe_interval,
        provision_delay=args.provision_delay)
    runs = run_chaos_suite(
        app, names, qps=args.qps, duration=args.duration,
        n_machines=args.machines, replicas=replicas, seed=args.seed,
        failover=failover, default_policy=_resilience_policy(args))
    for run in runs:
        print(run.scorecard.render())
        print()

    def fmt(value, unit="s"):
        return "-" if value is None else f"{value:.2f}{unit}"

    rows = [[run.scenario,
             "held" if run.scorecard.steady_state_ok else "VIOLATED",
             fmt(run.scorecard.detection_time),
             fmt(run.scorecard.mttr),
             f"{run.scorecard.blast_radius:.1f}",
             f"{run.scorecard.goodput_lost * 100:.1f}%",
             run.scorecard.attributed or "-"]
            for run in runs]
    print(format_table(
        ["scenario", "steady state", "detection", "MTTR",
         "blast (tier-s)", "goodput lost", "attributed"], rows,
        title=f"{app.name} chaos suite @ {args.qps:g} QPS"))

    if args.out:
        import json
        payload = {
            "app": app.name, "qps": args.qps,
            "duration": args.duration, "seed": args.seed,
            "failover": not args.no_failover,
            "scenarios": [run.scorecard.to_dict() for run in runs],
        }
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"scorecards written to {args.out}")

    # A broken steady state on a no-fault baseline means the suite is
    # not measuring resilience at all — fail loudly (CI keys off this).
    broken = [run.scenario for run in runs
              if run.scorecard.fault_count == 0
              and not run.scorecard.steady_state_ok]
    if broken:
        print(f"error: steady-state hypothesis violated without faults "
              f"in: {', '.join(broken)}", file=sys.stderr)
        return 1
    return 0


def _cmd_region(args) -> int:
    from .chaos.schedule import FaultSchedule
    from .chaos.scorecard import SteadyStateHypothesis
    from .region import (RegionOutage, run_region_scenario,
                         two_region_topology)

    app = build_app(args.app)
    replicas = balanced_provision(app, target_qps=max(args.qps * 1.5, 50))
    # A geo-failover SLO must budget the wide-area legs a failed-over
    # request pays (out and back, plus probe slack).
    qos = args.qos if args.qos is not None \
        else app.qos_latency + 4 * args.rtt
    hypothesis = SteadyStateHypothesis(latency=qos)

    def topo():
        return two_region_topology(machines=args.machines,
                                   rtt=args.rtt,
                                   primary_share=args.primary_share)

    primary = topo().names[0]

    def schedule():
        return FaultSchedule([RegionOutage(
            primary, start=args.outage_at,
            duration=None if args.permanent else args.outage_duration)])

    def run(faults, mode, scenario):
        return run_region_scenario(
            app, faults, topology=topo(), qps=args.qps,
            duration=args.duration, mode=mode, seed=args.seed,
            replicas=replicas, hypothesis=hypothesis,
            scenario=scenario)

    baseline = run(None, args.mode, "region-baseline")
    outage = run(schedule(), args.mode, f"region-outage-{args.mode}")
    print(outage.scorecard.render())
    print()
    sticky = None
    if args.compare_sticky and args.mode == "failover":
        sticky = run(schedule(), "sticky", "region-outage-sticky")

    def fmt(value, unit="s"):
        return "-" if value is None else f"{value:.2f}{unit}"

    runs = [baseline, outage] + ([sticky] if sticky else [])
    rows = [[r.scenario,
             "held" if r.scorecard.steady_state_ok else "VIOLATED",
             fmt(r.scorecard.detection_time),
             fmt(r.scorecard.cross_region_mttr),
             str(r.scorecard.stale_reads),
             f"{r.post_fault_goodput(qos):.1f}"]
            for r in runs]
    print(format_table(
        ["run", "steady state", "detection", "cross-region MTTR",
         "stale reads", "good QPS after fault"], rows,
        title=f"{app.name} region suite @ {args.qps:g} QPS "
              f"(outage of {primary})"))
    ratio = None
    if sticky is not None:
        sticky_good = sticky.post_fault_goodput(qos)
        failover_good = outage.post_fault_goodput(qos)
        ratio = failover_good / sticky_good if sticky_good > 0 \
            else float("inf")
        print(f"failover vs sticky post-fault goodput: "
              f"{failover_good:.1f} vs {sticky_good:.1f} req/s "
              f"({ratio:.2f}x)")

    if args.out:
        import json
        payload = {
            "app": app.name, "qps": args.qps,
            "duration": args.duration, "seed": args.seed,
            "rtt": args.rtt, "qos": qos, "mode": args.mode,
            "runs": {r.scenario: r.scorecard.to_dict() for r in runs},
            "post_fault_goodput": {
                r.scenario: r.post_fault_goodput(qos) for r in runs},
        }
        if ratio is not None:
            payload["goodput_ratio"] = \
                None if ratio == float("inf") else ratio
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"scorecards written to {args.out}")

    if not baseline.scorecard.steady_state_ok:
        print("error: steady-state hypothesis violated without faults: "
              f"{baseline.scorecard.steady_state_detail}",
              file=sys.stderr)
        return 1
    if args.max_mttr is not None:
        mttr = outage.scorecard.cross_region_mttr
        if mttr is None or mttr > args.max_mttr:
            print(f"error: cross-region MTTR "
                  f"{'unrecovered' if mttr is None else f'{mttr:.2f}s'}"
                  f" exceeds the {args.max_mttr:g}s bound",
                  file=sys.stderr)
            return 1
    return 0


def _cmd_provision(args) -> int:
    app = build_app(args.app)
    replicas = balanced_provision(app, target_qps=args.qps,
                                  target_util=args.util)
    model = AnalyticModel(app, replicas=replicas, cores=2)
    utils = model.utilizations(args.qps)
    rows = [[svc, replicas[svc], f"{utils[svc]:.2f}"]
            for svc in sorted(replicas, key=lambda s: -replicas[s])]
    print(format_table(
        ["service", "replicas", f"utilization @ {args.qps:g} QPS"],
        rows, title=f"{app.name}: balanced provisioning "
                    f"({sum(replicas.values())} replicas)"))
    return 0


def _cmd_sweep(args) -> int:
    app = build_app(args.app)
    replicas = balanced_provision(app, target_qps=max(args.qps) * 0.7)
    model = AnalyticModel(app, replicas=replicas, cores=2)
    rows = []
    for qps in args.qps:
        tail = model.tail(qps)
        rows.append([f"{qps:g}",
                     f"{tail * 1e3:.2f}" if tail != float("inf")
                     else "saturated",
                     str(tail <= app.qos_latency)])
    print(format_table(["QPS", "p99 (ms)", "QoS met"], rows,
                       title=f"{app.name} load sweep (analytic)"))
    return 0


def _cmd_dot(args) -> int:
    print(to_dot(build_app(args.app)))
    return 0


def _cmd_lint(args) -> int:
    from .analysis_static.cli import main as lint_main
    forwarded = list(args.paths)
    fmt = args.format
    if args.json and fmt == "text":
        fmt = "json"
    if fmt != "text":
        forwarded += ["--format", fmt]
    if args.app:
        forwarded += ["--app", args.app]
    if args.load is not None:
        forwarded += ["--load", str(args.load)]
    if args.config:
        forwarded += ["--config", args.config]
    if args.explain:
        forwarded.append("--explain")
    return lint_main(forwarded)


def _add_sampling_flags(parser) -> None:
    parser.add_argument(
        "--sample-rate", type=_sample_rate, default=None,
        metavar="RATE",
        help="deterministic head-sampling rate for traces in (0, 1]; "
             "exact counters stay unsampled, percentiles are computed "
             "on the kept subset, throughput is weight-corrected")
    parser.add_argument(
        "--sample-seed", type=int, default=0, metavar="SEED",
        help="sampling seed (independent of the simulation seed)")


def _cmd_synth_generate(args) -> int:
    from .apps.synth import parse_spec, generate, topology_json
    app = generate(parse_spec(args.spec))
    payload = topology_json(app)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload)
        print(f"{app.name}: {len(app.services)} services, "
              f"{len(app.operations)} operations; topology written "
              f"to {args.out}")
    else:
        print(payload, end="")
    return 0


def _cmd_synth_clone(args) -> int:
    from .apps.synth import (CloneConfig, clone_from_traces,
                             load_traces, topology_json,
                             validate_clone)
    with open(args.traces) as fh:
        traces = load_traces(fh.read())
    config = CloneConfig(min_service_samples=args.min_samples)
    result = clone_from_traces(traces, name=args.name, config=config)
    app = result.app
    print(f"{app.name}: cloned {len(app.services)} services, "
          f"{len(app.operations)} operations from "
          f"{result.used_traces}/{result.source_traces} traces")
    for finding in result.warnings:
        print(f"warning: {finding.code} {finding.message}",
              file=sys.stderr)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(topology_json(app))
        print(f"topology written to {args.out}")
    if not args.validate:
        return 0
    report = validate_clone(traces, result, qps=args.qps,
                            duration=args.duration,
                            n_machines=args.machines, seed=args.seed)
    print()
    print(report.render())
    if report.skipped_tiers:
        print(f"skipped (too few samples): "
              f"{', '.join(report.skipped_tiers)}")
    if args.report:
        import json as _json
        with open(args.report, "w") as fh:
            _json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"fidelity report written to {args.report}")
    return 0 if report.ok else 1


def _cmd_synth_matrix(args) -> int:
    from .apps.synth import MatrixSpec, run_matrix
    spec = MatrixSpec(
        patterns=tuple(args.patterns), sizes=tuple(args.sizes),
        seeds=tuple(args.seeds), qps=args.qps,
        duration=args.duration, n_machines=args.machines,
        scenario=None if args.scenario == "none" else args.scenario)
    report = run_matrix(
        spec, progress=(None if args.quiet else
                        lambda line: print(line, file=sys.stderr)))
    print(report.render_markdown())
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report.to_json())
        print(f"matrix report written to {args.out}")
    return 0 if report.ok else 1


_SYNTH_COMMANDS = {
    "generate": _cmd_synth_generate,
    "clone": _cmd_synth_clone,
    "matrix": _cmd_synth_matrix,
}


def _cmd_synth(args) -> int:
    return _SYNTH_COMMANDS[args.synth_kind](args)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DeathStarBench reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list suite applications")

    p = sub.add_parser("describe", help="describe one application")
    p.add_argument("app", type=_app_arg, metavar="APP")

    p = sub.add_parser("simulate", help="run one app under load")
    p.add_argument("app", type=_app_arg, metavar="APP")
    p.add_argument("--qps", type=float, default=100.0)
    p.add_argument("--duration", type=float, default=20.0)
    p.add_argument("--machines", type=int, default=6)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dashboard", action="store_true",
                   help="render the full text dashboard")
    p.add_argument("--retries", type=_nonnegative_int, default=0,
                   help="max retries per RPC (default: no retries)")
    p.add_argument("--rpc-timeout", type=_positive_float, default=None,
                   help="per-RPC timeout in seconds")
    p.add_argument("--breakers", action="store_true",
                   help="enable per-edge circuit breakers")
    p.add_argument("--degradation", action="store_true",
                   help="arm graceful degradation: criticality-aware "
                        "front-door shedding, brownout control, and "
                        "the app's declared degradation policies")
    p.add_argument("--metrics-out", metavar="FILE", default=None,
                   help="write Prometheus text exposition to FILE")
    p.add_argument("--traces-out", metavar="FILE", default=None,
                   help="write OTLP JSON trace dump to FILE")
    p.add_argument("--scrape-period", type=_positive_float, default=1.0,
                   help="metrics scrape cadence in sim seconds")
    _add_sampling_flags(p)

    p = sub.add_parser(
        "report", help="post-run analysis reports")
    report_sub = p.add_subparsers(dest="report_kind", required=True)
    p = report_sub.add_parser(
        "qos", help="attribute QoS violations to culprit tiers")
    p.add_argument("app", type=_app_arg, metavar="APP")
    p.add_argument("--qps", type=float, default=100.0)
    p.add_argument("--duration", type=float, default=20.0)
    p.add_argument("--machines", type=int, default=6)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--target", type=_positive_float, default=None,
                   help="latency target in seconds "
                        "(default: the app's QoS bound)")
    p.add_argument("--percentile", type=float, default=0.99,
                   help="tail percentile checked against the target")
    p.add_argument("--window", type=_positive_float, default=None,
                   help="violation-detection window in sim seconds")
    p.add_argument("--delay", metavar="SERVICE:SECONDS",
                   type=lambda t: _parse_fault(t, "SECONDS"),
                   action="append", default=[],
                   help="add fixed latency to one tier (repeatable)")
    p.add_argument("--slow", metavar="SERVICE:FACTOR",
                   type=lambda t: _parse_fault(t, "FACTOR"),
                   action="append", default=[],
                   help="multiply one tier's CPU work (repeatable)")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable episode report")
    _add_sampling_flags(p)

    p = report_sub.add_parser(
        "degradation",
        help="run with graceful degradation armed and report the "
             "brownout trajectory and per-class goodput/utility")
    p.add_argument("app", type=_app_arg, metavar="APP")
    p.add_argument("--qps", type=float, default=100.0)
    p.add_argument("--duration", type=float, default=20.0)
    p.add_argument("--machines", type=int, default=6)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--delay", metavar="SERVICE:SECONDS",
                   type=lambda t: _parse_fault(t, "SECONDS"),
                   action="append", default=[],
                   help="add fixed latency to one tier (repeatable)")
    p.add_argument("--slow", metavar="SERVICE:FACTOR",
                   type=lambda t: _parse_fault(t, "FACTOR"),
                   action="append", default=[],
                   help="multiply one tier's CPU work (repeatable)")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable degradation report")

    p = report_sub.add_parser(
        "critical-path",
        help="aggregated per-tier critical-path breakdown")
    p.add_argument("app", type=_app_arg, metavar="APP")
    p.add_argument("--qps", type=float, default=100.0)
    p.add_argument("--duration", type=float, default=20.0)
    p.add_argument("--machines", type=int, default=6)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable breakdown")
    _add_sampling_flags(p)

    p = sub.add_parser(
        "profile", help="flight-record the simulator's own runtime")
    p.add_argument("app", type=_app_arg, metavar="APP")
    p.add_argument("--qps", type=float, default=80.0)
    p.add_argument("--duration", type=float, default=10.0)
    p.add_argument("--machines", type=int, default=6)
    p.add_argument("--seed", type=int, default=11)
    p.add_argument("--top", type=_nonnegative_int, default=12,
                   help="rows per attribution table")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write machine-readable profile JSON to FILE")
    _add_sampling_flags(p)

    p = sub.add_parser(
        "predict", help="train/evaluate online violation prediction")
    p.add_argument("--scenario", default="backpressure",
                   help="ramped-fault scenario (see --list-scenarios)")
    p.add_argument("--list-scenarios", action="store_true",
                   help="list registered scenarios and exit")
    p.add_argument("--model", default="logistic",
                   choices=["majority", "heuristic", "logistic"])
    p.add_argument("--train-seeds", type=int, nargs="+",
                   default=[1, 4, 5], metavar="SEED",
                   help="seeds of the training runs")
    p.add_argument("--eval-seeds", type=int, nargs="+",
                   default=[2, 3], metavar="SEED",
                   help="held-out seeds to evaluate on")
    p.add_argument("--horizon", type=_positive_float, default=8.0,
                   help="label lead-time horizon in sim seconds")
    p.add_argument("--threshold", type=_positive_float, default=0.6,
                   help="alert probability threshold")
    p.add_argument("--mitigate", action="append", default=[],
                   choices=["prescale", "pretrip", "shed"],
                   help="re-run held-out seeds with this proactive "
                        "action (repeatable)")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the pipeline report as JSON to FILE")

    p = sub.add_parser(
        "chaos", help="run chaos scenarios and print scorecards")
    p.add_argument("app", nargs="?", type=_app_arg, metavar="APP")
    p.add_argument("--scenario", action="append", default=[],
                   metavar="NAME",
                   help="scenario to run (repeatable; default: the "
                        "built-in suite)")
    p.add_argument("--list-scenarios", action="store_true",
                   help="list registered scenarios and exit")
    p.add_argument("--qps", type=float, default=60.0)
    p.add_argument("--duration", type=float, default=20.0)
    p.add_argument("--machines", type=int, default=6)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-failover", action="store_true",
                   help="disable health-checked failover (drain-only "
                        "recovery)")
    p.add_argument("--probe-interval", type=_positive_float,
                   default=0.5, help="health probe cadence in seconds")
    p.add_argument("--provision-delay", type=_positive_float,
                   default=3.0,
                   help="replacement provisioning delay in seconds")
    p.add_argument("--retries", type=_nonnegative_int, default=0,
                   help="max retries per RPC (default: no retries)")
    p.add_argument("--rpc-timeout", type=_positive_float, default=None,
                   help="per-RPC timeout in seconds")
    p.add_argument("--breakers", action="store_true",
                   help="enable per-edge circuit breakers")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the scorecards as JSON to FILE")

    p = sub.add_parser(
        "region", help="multi-region failover experiment")
    p.add_argument("app", type=_app_arg, metavar="APP")
    p.add_argument("--qps", type=float, default=60.0,
                   help="global offered load across all populations")
    p.add_argument("--duration", type=float, default=25.0)
    p.add_argument("--machines", type=int, default=3,
                   help="machines per region")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--mode", choices=["failover", "sticky"],
                   default="failover",
                   help="front-door routing mode (sticky = ablation)")
    p.add_argument("--outage-at", type=_positive_float, default=5.0,
                   help="when the primary-region outage injects")
    p.add_argument("--outage-duration", type=_positive_float,
                   default=6.0, help="outage length in seconds")
    p.add_argument("--permanent", action="store_true",
                   help="the outage never repairs")
    p.add_argument("--rtt", type=_positive_float, default=0.04,
                   help="one-way inter-region latency in seconds")
    p.add_argument("--primary-share", type=float, default=0.6,
                   help="fraction of users homed in the primary")
    p.add_argument("--qos", type=_positive_float, default=None,
                   help="global latency SLO in seconds (default: the "
                        "app's QoS bound plus 4x the RTT)")
    p.add_argument("--compare-sticky", action="store_true",
                   help="also run the sticky-routing ablation and "
                        "report the goodput ratio")
    p.add_argument("--max-mttr", type=_positive_float, default=None,
                   help="fail (exit 1) if cross-region MTTR exceeds "
                        "this bound or routing never recovers")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the scorecards as JSON to FILE")

    p = sub.add_parser(
        "synth", help="synthetic topologies: generate, clone, matrix")
    synth_sub = p.add_subparsers(dest="synth_kind", required=True)
    p = synth_sub.add_parser(
        "generate", help="build a parametric topology and emit its "
                         "canonical JSON")
    p.add_argument("spec", metavar="SPEC",
                   help="generator spec, e.g. synth:mesh:n32:seed7")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write topology JSON to FILE instead of stdout")
    p = synth_sub.add_parser(
        "clone", help="infer an application from an exported trace "
                      "set (OTLP or schema-v2 JSON)")
    p.add_argument("traces", metavar="TRACES_FILE",
                   help="trace export file (repro simulate "
                        "--traces-out, or repro.tracing JSON)")
    p.add_argument("--name", default="clone",
                   help="name for the cloned application")
    p.add_argument("--min-samples", type=_nonnegative_int, default=20,
                   help="span samples per tier below which a SYN002 "
                        "warning is raised")
    p.add_argument("--validate", action="store_true",
                   help="re-simulate the clone and gate on the "
                        "per-tier percentile fidelity tolerance")
    p.add_argument("--qps", type=float, default=100.0,
                   help="validation load (match the source export)")
    p.add_argument("--duration", type=float, default=20.0)
    p.add_argument("--machines", type=int, default=4)
    p.add_argument("--seed", type=int, default=1)
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the clone's topology JSON to FILE")
    p.add_argument("--report", metavar="FILE", default=None,
                   help="write the fidelity report JSON to FILE "
                        "(with --validate)")
    p = synth_sub.add_parser(
        "matrix", help="patterns x sizes x seeds scenario sweep with "
                       "baseline + chaos smoke runs")
    p.add_argument("--patterns", nargs="+",
                   default=["chain", "fanout", "branch", "tree",
                            "ptree", "mesh"],
                   help="topology patterns to sweep")
    p.add_argument("--sizes", type=int, nargs="+", default=[8, 16, 32],
                   help="service counts to sweep")
    p.add_argument("--seeds", type=int, nargs="+", default=[1, 2],
                   help="generator seeds to sweep")
    p.add_argument("--qps", type=float, default=120.0)
    p.add_argument("--duration", type=float, default=12.0)
    p.add_argument("--machines", type=int, default=4)
    p.add_argument("--scenario", default="machine_crash",
                   help="chaos scenario per cell ('none' skips the "
                        "fault leg)")
    p.add_argument("--quiet", action="store_true",
                   help="suppress per-cell progress lines")
    p.add_argument("--out", metavar="FILE", default=None,
                   help="write the consolidated report JSON to FILE")

    p = sub.add_parser("provision", help="balanced provisioning")
    p.add_argument("app", type=_app_arg, metavar="APP")
    p.add_argument("--qps", type=float, default=300.0)
    p.add_argument("--util", type=float, default=0.6)

    p = sub.add_parser("sweep", help="analytic load sweep")
    p.add_argument("app", type=_app_arg, metavar="APP")
    p.add_argument("--qps", type=float, nargs="+",
                   default=[50, 100, 200, 400, 800])

    p = sub.add_parser("dot", help="dependency graph in DOT format")
    p.add_argument("app", type=_app_arg, metavar="APP")

    p = sub.add_parser(
        "lint", help="simulation-safety static analysis and "
                     "capacity/deadline flow analysis")
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint "
                        "(default: the repro package)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable report (alias for "
                        "--format json)")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="report format")
    p.add_argument("--app", type=_app_arg, default=None,
                   help="flow-analysis mode: check one application's "
                        "deployment plan (CAP/DLINE/CFG) at --load")
    p.add_argument("--load", type=_positive_float, default=None,
                   help="declared offered load in rps (with --app)")
    p.add_argument("--config", default=None,
                   help="JSON deployment plan file (with --app)")
    p.add_argument("--explain", action="store_true",
                   help="print the rule table and exit")

    return parser


_COMMANDS = {
    "list": _cmd_list,
    "describe": _cmd_describe,
    "simulate": _cmd_simulate,
    "report": _cmd_report,
    "profile": _cmd_profile,
    "predict": _cmd_predict,
    "chaos": _cmd_chaos,
    "region": _cmd_region,
    "synth": _cmd_synth,
    "provision": _cmd_provision,
    "sweep": _cmd_sweep,
    "dot": _cmd_dot,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
