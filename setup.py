"""Legacy setup shim.

The offline environment ships a setuptools too old for PEP 660 editable
installs (no ``bdist_wheel``); with this file present, ``pip install -e .``
falls back to ``setup.py develop``, which works.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
